"""Append-only campaign result store: chunk checkpoints that survive kills.

Layout, one directory per scenario content-hash under the store root::

    <root>/
      <scenario_id>/
        spec.json      # the full spec (with name/description), written once
        chunks.jsonl   # one canonical-JSON line per *settled* chunk
        report.json    # the final merged report, written when settled

``chunks.jsonl`` is the checkpoint log. A record is appended (and fsynced)
only after its chunk settled — verified completely, or quarantined after
exhausting its retry budget — and carries the chunk index, a digest of
the chunk's bit patterns, the chunk's outcome, and a content ``check``
sealing the record against bit rot::

    {"check":"…","chunk":3,"digest":"…","explorers":[],"states":12345,"total":256,"trapped":256}
    {"attempts":3,"check":"…","chunk":5,"digest":"…","error":"ChunkTimeoutError: …","failed":true}

Keys are sorted and separators minimal, so a record's byte form is a pure
function of its content, and ``check`` (a digest of every other field)
makes *any* byte flip inside a record detectable. Because every record
names its chunk, the log tolerates out-of-order appends (parallel workers
finish in any order), duplicate records (identical re-verification is a
no-op), and a torn final line from a kill mid-write (ignored — that chunk
simply re-verifies on resume). Failure records are *provisional*: a later
success record for the same chunk supersedes them (``retry-failed``), and
a later failure replaces an earlier one. Conflicting *success* duplicates
mean a corrupt store.

Two read paths, on purpose:

* :meth:`ResultStore.load_records` — the strict default. Any undecodable
  non-final line, malformed or check-mismatched record, or conflicting
  success records raise :class:`~repro.errors.StoreCorruptionError`.
  Silent corruption never masquerades as success.
* :meth:`ResultStore.recover` — the explicit fsck. Salvages the valid
  record prefix of a corrupt log, quarantines the damaged original under
  a ``.corrupt-*`` name, and leaves a strict-clean log behind so the
  runner re-executes exactly the lost chunks.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional, Sequence

from repro import telemetry
from repro.errors import ScenarioError, StoreCorruptionError
from repro.scenarios import faults
from repro.scenarios.spec import ScenarioSpec

_RESULT_KEYS = frozenset(
    {"check", "chunk", "digest", "total", "trapped", "explorers", "states"}
)
_FAILURE_KEYS = frozenset(
    {"check", "chunk", "digest", "failed", "attempts", "error"}
)
# Failure records written since the retry-schedule diagnostics landed
# carry one extra key; records without it (older logs) stay valid.
_FAILURE_KEYS_DIAGNOSED = _FAILURE_KEYS | {"diagnostics"}


def chunk_digest(patterns: Sequence[int]) -> str:
    """Content digest of one chunk's bit patterns (16 hex chars)."""
    canonical = json.dumps(list(patterns), separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def canonical_line(record: dict[str, Any]) -> str:
    """A record's canonical single-line JSON form (sorted, minimal)."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def record_check(record: Mapping[str, Any]) -> str:
    """The content check of a record's non-``check`` fields (12 hex)."""
    body = {key: value for key, value in record.items() if key != "check"}
    return hashlib.sha256(
        canonical_line(body).encode("utf-8")
    ).hexdigest()[:12]


def seal_record(record: dict[str, Any]) -> dict[str, Any]:
    """Return the record with its content ``check`` field set."""
    sealed = {key: value for key, value in record.items() if key != "check"}
    sealed["check"] = record_check(sealed)
    return sealed


def is_failure_record(record: Mapping[str, Any]) -> bool:
    """Whether a (valid) record marks a quarantined chunk."""
    return "failed" in record


def _validate_record(record: Any) -> bool:
    """Structural + content-check validation of one decoded record."""
    if not isinstance(record, dict) or not isinstance(
        record.get("chunk"), int
    ):
        return False
    keys = set(record)
    if keys == _RESULT_KEYS:
        pass
    elif keys in (_FAILURE_KEYS, _FAILURE_KEYS_DIAGNOSED):
        if record["failed"] is not True:
            return False
    else:
        return False
    return record["check"] == record_check(record)


def _merge_record(
    records: dict[int, dict[str, Any]], record: dict[str, Any]
) -> Optional[str]:
    """Fold one record into the per-chunk map.

    Success records are authoritative (conflicting duplicates are
    corruption — returns an error string); failure records are
    provisional (superseded by any success, replaced by later failures).
    """
    index = record["chunk"]
    previous = records.get(index)
    if previous is None:
        records[index] = record
        return None
    if is_failure_record(record):
        if is_failure_record(previous):
            records[index] = record  # the latest failure wins
        return None  # a stale failure never shadows a success
    if is_failure_record(previous):
        records[index] = record  # success supersedes quarantine
        return None
    if previous != record:
        return f"conflicting records for chunk {index}"
    telemetry.counter("store.dedup", chunk=index)
    return None  # identical duplicate: no-op


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`ResultStore.recover` pass did."""

    path: Path
    lines: int
    salvaged: int
    dropped: int
    torn_tail: bool
    quarantined: Optional[Path]
    chunks: tuple[int, ...]

    @property
    def clean(self) -> bool:
        """Whether the log needed no quarantine (at most a torn tail)."""
        return self.quarantined is None

    def summary(self) -> str:
        """One-line human summary for the CLI."""
        if self.clean and not self.torn_tail:
            return (
                f"{self.path}: clean — {self.salvaged} records, "
                "nothing to do"
            )
        if self.clean:
            return (
                f"{self.path}: torn tail truncated — {self.salvaged} "
                "records kept"
            )
        return (
            f"{self.path}: salvaged {self.salvaged} of {self.lines} lines "
            f"({self.dropped} dropped); corrupt original quarantined at "
            f"{self.quarantined}"
        )


class ResultStore:
    """Filesystem-backed store of campaign checkpoints and reports."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def scenario_dir(self, spec: ScenarioSpec) -> Path:
        """The scenario's directory (``<root>/<scenario_id>``)."""
        return self.root / spec.scenario_id

    def spec_path(self, spec: ScenarioSpec) -> Path:
        """Path of the stored spec."""
        return self.scenario_dir(spec) / "spec.json"

    def chunks_path(self, spec: ScenarioSpec) -> Path:
        """Path of the append-only checkpoint log."""
        return self.scenario_dir(spec) / "chunks.jsonl"

    def report_path(self, spec: ScenarioSpec) -> Path:
        """Path of the final report."""
        return self.scenario_dir(spec) / "report.json"

    # ------------------------------------------------------------------
    # Spec persistence
    # ------------------------------------------------------------------
    def prepare(self, spec: ScenarioSpec) -> None:
        """Create the scenario directory and persist (or cross-check) the spec.

        An existing ``spec.json`` must decode to the same semantic payload
        (same scenario hash) — anything else means two different workloads
        collided on one directory, which is a corrupt store. A *torn*
        ``spec.json`` (kill mid-write) is simply rewritten: the directory
        is keyed by the spec's own content hash, so the file is
        reconstructible from the spec in hand.
        """
        directory = self.scenario_dir(spec)
        directory.mkdir(parents=True, exist_ok=True)
        path = self.spec_path(spec)
        if path.exists():
            try:
                stored = ScenarioSpec.from_dict(
                    json.loads(path.read_text("utf-8"))
                )
            except json.JSONDecodeError:
                stored = None
            if stored is not None:
                if stored.scenario_id != spec.scenario_id:
                    raise StoreCorruptionError(
                        f"store corruption: {path} holds scenario "
                        f"{stored.scenario_id}, expected {spec.scenario_id}"
                    )
                return
        # Atomic publish (write-then-rename) so the file is never observed
        # half-written, even by a concurrent runner.
        tmp_path = path.with_suffix(".json.tmp")
        tmp_path.write_text(
            json.dumps(spec.to_dict(), indent=2, sort_keys=True) + "\n", "utf-8"
        )
        os.replace(tmp_path, path)

    # ------------------------------------------------------------------
    # Checkpoint log — the strict read path
    # ------------------------------------------------------------------
    def load_records(self, spec: ScenarioSpec) -> dict[int, dict[str, Any]]:
        """Settled-chunk records, keyed by chunk index.

        Tolerates exactly one blemish: an undecodable final line
        *without* a trailing newline — the one shape a kill mid-append
        actually produces (that chunk never checkpointed, so resuming
        re-verifies it). Undecodable *newline-terminated* lines can only
        come from external damage, so they — like any malformed or
        check-mismatched record, or two conflicting success records for
        one chunk — raise :class:`StoreCorruptionError`; run
        ``campaign fsck`` (:meth:`recover`) to salvage.

        Lines are split on ``\\n`` alone (not ``str.splitlines``, whose
        extra boundary characters would let a single flipped byte make
        this reader and :meth:`recover` disagree about the log's very
        line structure).
        """
        path = self.chunks_path(spec)
        if not path.exists():
            return {}
        records: dict[int, dict[str, Any]] = {}
        text = path.read_text("utf-8", errors="replace")
        torn_tail = not text.endswith("\n") and bool(text)
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        for lineno, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if lineno == len(lines) - 1 and torn_tail:
                    # Torn tail from an interrupt mid-append: the chunk
                    # never checkpointed, so resuming re-verifies it.
                    continue
                raise StoreCorruptionError(
                    f"corrupt checkpoint log {path}: undecodable line "
                    f"{lineno + 1}; run `campaign fsck` to salvage"
                )
            if not _validate_record(record):
                raise StoreCorruptionError(
                    f"corrupt checkpoint log {path}: malformed or "
                    f"check-mismatched record on line {lineno + 1}; "
                    "run `campaign fsck` to salvage"
                )
            conflict = _merge_record(records, record)
            if conflict is not None:
                raise StoreCorruptionError(
                    f"corrupt checkpoint log {path}: {conflict}; "
                    "run `campaign fsck` to salvage"
                )
        return records

    def append_record(self, spec: ScenarioSpec, record: dict[str, Any]) -> None:
        """Append one settled-chunk record, sealed, flushed and fsynced.

        Durability before throughput: a record either lands whole or (on
        a kill mid-write) becomes the torn tail :meth:`load_records`
        ignores — the store never claims work it cannot prove. A torn
        tail left by an earlier kill is repaired (truncated) before the
        append; writing after it directly would weld the fragment and the
        new record into one permanently undecodable line. An active
        :class:`~repro.scenarios.faults.FaultPlan` may tear the write or
        fail the fsync here (``OSError`` — the caller must retry).
        """
        path = self.chunks_path(spec)
        with telemetry.span("store.append", chunk=int(record["chunk"])):
            self._repair_torn_tail(path)
            sealed = seal_record(record)
            with open(path, "a", encoding="utf-8") as handle:
                faults.tainted_append(
                    handle, canonical_line(sealed) + "\n", int(sealed["chunk"])
                )

    @staticmethod
    def _repair_torn_tail(path: Path) -> None:
        """Make the log end on a record boundary before appending.

        A final line without a trailing newline is either a torn fragment
        from a kill mid-append (truncated away — :meth:`load_records`
        never counted it) or, from a hand edit, a *valid* record merely
        missing its newline (completed in place rather than discarded).
        """
        if not path.exists():
            return
        raw = path.read_bytes()
        if not raw or raw.endswith(b"\n"):
            return
        cut = raw.rfind(b"\n") + 1
        tail = raw[cut:]
        try:
            json.loads(tail.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            with open(path, "rb+") as handle:
                handle.truncate(cut)
        else:
            with open(path, "ab") as handle:
                handle.write(b"\n")

    # ------------------------------------------------------------------
    # Recovery — the explicit fsck path
    # ------------------------------------------------------------------
    def recover(
        self,
        spec: ScenarioSpec,
        expected_digests: Optional[Mapping[int, str]] = None,
    ) -> RecoveryReport:
        """Salvage the valid record prefix of a (possibly corrupt) log.

        Scans ``chunks.jsonl`` line by line with exactly the strict
        reader's validation (plus, when ``expected_digests`` is given,
        the runner's chunk-range and digest cross-checks). The first
        offending line ends the salvageable prefix: the original file is
        quarantined under a ``.corrupt-N`` sibling name and a fresh log
        holding only the salvaged records (canonical lines, chunk order,
        fsynced) replaces it — so the strict read path succeeds
        afterwards and the runner re-executes exactly the lost chunks. A
        log whose only blemish is a torn *final* line is repaired in
        place (truncated) without quarantine, and a clean log is left
        untouched. Never raises on corruption; returns what it did.
        """
        path = self.chunks_path(spec)
        if not path.exists():
            return RecoveryReport(path, 0, 0, 0, False, None, ())
        raw = path.read_bytes()
        unterminated = bool(raw) and not raw.endswith(b"\n")
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        records: dict[int, dict[str, Any]] = {}
        kept = torn_tail = 0
        bad_line: Optional[int] = None
        for lineno, line_bytes in enumerate(lines):
            if not line_bytes.strip():
                continue
            record: Any = None
            try:
                record = json.loads(line_bytes.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                if lineno == len(lines) - 1 and unterminated:
                    torn_tail = 1  # forgiven, like the strict reader
                    continue
                bad_line = lineno
                break
            if not _validate_record(record):
                bad_line = lineno
                break
            if expected_digests is not None:
                index = record["chunk"]
                if (
                    index not in expected_digests
                    or record["digest"] != expected_digests[index]
                ):
                    bad_line = lineno
                    break
            if _merge_record(records, record) is not None:
                bad_line = lineno
                break
            kept += 1
        chunks = tuple(sorted(records))
        if bad_line is None:
            if torn_tail:
                self._repair_torn_tail(path)
            return RecoveryReport(
                path, len(lines), kept, 0, bool(torn_tail), None, chunks
            )
        quarantine = self._quarantine_path(path)
        os.replace(path, quarantine)
        salvaged_text = "".join(
            canonical_line(records[index]) + "\n" for index in chunks
        )
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(salvaged_text)
            handle.flush()
            os.fsync(handle.fileno())
        dropped = len(lines) - kept - torn_tail
        return RecoveryReport(
            path, len(lines), kept, dropped, bool(torn_tail), quarantine, chunks
        )

    @staticmethod
    def _quarantine_path(path: Path) -> Path:
        """First free ``<log>.corrupt-N`` sibling name."""
        number = 1
        while True:
            candidate = path.with_name(f"{path.name}.corrupt-{number}")
            if not candidate.exists():
                return candidate
            number += 1

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def write_report(self, spec: ScenarioSpec, text: str) -> Path:
        """Write the final report bytes atomically; returns the path.

        Write-then-rename (as :meth:`prepare` does for the spec) so a
        kill mid-write can never leave a half-written ``report.json``
        for consumers to read.
        """
        path = self.report_path(spec)
        tmp_path = path.with_suffix(".json.tmp")
        tmp_path.write_text(text, "utf-8")
        os.replace(tmp_path, path)
        return path

    def read_report(self, spec: ScenarioSpec) -> Optional[str]:
        """The stored report text, or ``None`` if not written yet."""
        path = self.report_path(spec)
        if not path.exists():
            return None
        return path.read_text("utf-8")


__all__ = [
    "RecoveryReport",
    "ResultStore",
    "canonical_line",
    "chunk_digest",
    "is_failure_record",
    "record_check",
    "seal_record",
]
