"""Declarative scenario specs: a verification workload as frozen data.

A :class:`ScenarioSpec` names everything that determines a sweep's outcome
and nothing that doesn't:

* a **dynamics family** — ``"highly-dynamic"`` (the unrestricted
  connected-over-time adversary the game solver plays) or one of the
  oblivious schedule families of
  :data:`repro.graph.schedules.SCHEDULE_FAMILIES` for simulation-style
  workloads;
* a **scheduler** — ``"fsync"`` or ``"ssync"``
  (:data:`repro.sim.SCHEDULERS`); the exact solver executes both: under
  SSYNC the adversary additionally activates a non-empty robot subset
  each round, and a winning SCC must activate every robot (fairness);
* a **robot class** — a table family (:data:`repro.verification.sweeps
  .TABLE_FAMILIES`: memoryless single/two-robot, memory-2 two-robot),
  either exhausted or sampled with a seeded RNG;
* a **start policy** — the paper's well-initiated towerless starts or the
  self-stabilizing quantifier over arbitrary (ill-initiated, towers
  allowed) placements;
* a **property** — perpetual exploration (the paper's spec) or the
  at-least-once live exploration of Di Luna et al.

Specs are frozen dataclasses with a canonical JSON form
(:meth:`ScenarioSpec.to_dict`, round-tripped by :mod:`repro.serialize`)
and a stable content-hash identity (:attr:`ScenarioSpec.scenario_id`)
computed over the *semantic* payload only — renaming or re-describing a
scenario does not orphan its stored results, changing what it verifies
does. The chunking of the pattern stream (``chunk_size``) is part of the
payload because it defines the checkpoint boundaries a resumed campaign
must agree on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ScenarioError
from repro.graph.schedules import SCHEDULE_FAMILIES
from repro.sim import SCHEDULERS
from repro.verification.enumeration import sample_table_patterns
from repro.verification.game import PROPERTIES
from repro.verification.sweeps import (
    START_POLICIES,
    TABLE_FAMILIES,
    family_k,
    family_space,
)

SCENARIO_FORMAT_VERSION = 1

#: Dynamics family names a scenario may declare. ``"highly-dynamic"`` is
#: the adversarial family of the paper's theorems — the only one the
#: exact solver quantifies over; the schedule families are oblivious
#: workloads for simulation-style scenarios.
DYNAMICS_FAMILIES = ("highly-dynamic",) + tuple(sorted(SCHEDULE_FAMILIES))

#: The largest family a scenario may enumerate exhaustively; bigger
#: families (e.g. the 2**64 memory-2 class) must declare a sample.
EXHAUSTIVE_LIMIT = 1 << 16

#: Default sampling seed (the paper's submission date, as elsewhere).
DEFAULT_RNG_SEED = 20170605


@dataclass(frozen=True)
class RobotClassSpec:
    """The robot-class axis of a scenario: which tables, and how many.

    ``family`` picks the table class (and with it the robot count, the
    memory size and the chirality fallback plan); ``sample`` is ``None``
    for exhaustive enumeration or the number of distinct tables to draw
    deterministically with ``rng_seed``.
    """

    family: str
    sample: int | None = None
    rng_seed: int = DEFAULT_RNG_SEED

    def __post_init__(self) -> None:
        if self.sample is None:
            # The seed is meaningless without sampling: normalize it away
            # so it cannot perturb spec equality or the scenario content
            # hash (an exhaustive campaign must never be orphaned by a
            # seed nobody used).
            object.__setattr__(self, "rng_seed", DEFAULT_RNG_SEED)

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on any inconsistency."""
        if self.family not in TABLE_FAMILIES:
            raise ScenarioError(
                f"unknown table family {self.family!r}; "
                f"choose from {TABLE_FAMILIES}"
            )
        space = family_space(self.family)
        if self.sample is None:
            if space > EXHAUSTIVE_LIMIT:
                raise ScenarioError(
                    f"family {self.family!r} has {space} members; "
                    f"exhaustive scenarios are capped at {EXHAUSTIVE_LIMIT} — "
                    "declare a sample"
                )
        elif not 1 <= self.sample <= space:
            # A sample's cost scales with the sample, not the space, so
            # only the space itself bounds it (10^6-table memory-2
            # campaigns are a ROADMAP item, not a mistake).
            raise ScenarioError(
                f"sample must be in 1..{space} "
                f"for family {self.family!r}, got {self.sample}"
            )

    @property
    def k(self) -> int:
        """Robot count of the table family."""
        return family_k(self.family)

    @property
    def table_count(self) -> int:
        """Number of tables this class expands to."""
        if self.sample is None:
            return family_space(self.family)
        return self.sample

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (embedded in the scenario encoding)."""
        return {
            "family": self.family,
            "sample": self.sample,
            "rng_seed": self.rng_seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RobotClassSpec":
        """Decode the :meth:`to_dict` form."""
        sample = data["sample"]
        return cls(
            family=str(data["family"]),
            sample=None if sample is None else int(sample),
            rng_seed=int(data["rng_seed"]),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named verification workload, fully determined by its fields."""

    name: str
    description: str
    robots: RobotClassSpec
    n: int
    topology: str = "ring"
    dynamics: str = "highly-dynamic"
    scheduler: str = "fsync"
    starts: str = "well"
    prop: str = "perpetual"
    chunk_size: int = 256

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on any inconsistency."""
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if self.topology != "ring":
            raise ScenarioError(
                f"scenario topology must be 'ring' (sweeps run on rings), "
                f"got {self.topology!r}"
            )
        if self.dynamics not in DYNAMICS_FAMILIES:
            raise ScenarioError(
                f"unknown dynamics family {self.dynamics!r}; "
                f"choose from {DYNAMICS_FAMILIES}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ScenarioError(
                f"unknown scheduler {self.scheduler!r}; choose from {SCHEDULERS}"
            )
        if self.starts not in START_POLICIES:
            raise ScenarioError(
                f"unknown start policy {self.starts!r}; "
                f"choose from {START_POLICIES}"
            )
        if self.prop not in PROPERTIES:
            raise ScenarioError(
                f"unknown property {self.prop!r}; choose from {PROPERTIES}"
            )
        if self.chunk_size < 1:
            raise ScenarioError(f"chunk_size must be >= 1, got {self.chunk_size}")
        self.robots.validate()
        if self.n < 3:
            raise ScenarioError(f"scenario rings need n >= 3, got n={self.n}")
        if self.starts == "well" and self.robots.k >= self.n:
            raise ScenarioError(
                f"well-initiated starts need k < n, got k={self.robots.k}, "
                f"n={self.n}"
            )

    # ------------------------------------------------------------------
    # Identity and encoding
    # ------------------------------------------------------------------
    def payload_dict(self) -> dict[str, Any]:
        """The semantic payload: every field that affects results.

        ``name`` and ``description`` are presentation metadata and are
        deliberately excluded — the scenario hash identifies the
        *workload*, so stored results survive renames.
        """
        return {
            "version": SCENARIO_FORMAT_VERSION,
            "topology": self.topology,
            "n": self.n,
            "dynamics": self.dynamics,
            "scheduler": self.scheduler,
            "robots": self.robots.to_dict(),
            "starts": self.starts,
            "property": self.prop,
            "chunk_size": self.chunk_size,
        }

    @property
    def scenario_id(self) -> str:
        """Stable content-hash identity (16 hex chars).

        SHA-256 over the canonical JSON of :meth:`payload_dict` (sorted
        keys, minimal separators) — the same spec hashes identically on
        every machine and Python version.
        """
        canonical = json.dumps(
            self.payload_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON-ready encoding (see :mod:`repro.serialize`)."""
        data: dict[str, Any] = {
            "format": "scenario",
            "name": self.name,
            "description": self.description,
        }
        data.update(self.payload_dict())
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Decode (and re-validate) the :meth:`to_dict` form."""
        if data.get("format") != "scenario":
            raise ScenarioError(
                f"expected format 'scenario', got {data.get('format')!r}"
            )
        if data.get("version") != SCENARIO_FORMAT_VERSION:
            raise ScenarioError(
                f"unsupported scenario version {data.get('version')!r} "
                f"(this library reads version {SCENARIO_FORMAT_VERSION})"
            )
        return cls(
            name=str(data["name"]),
            description=str(data["description"]),
            robots=RobotClassSpec.from_dict(data["robots"]),
            n=int(data["n"]),
            topology=str(data["topology"]),
            dynamics=str(data["dynamics"]),
            scheduler=str(data["scheduler"]),
            starts=str(data["starts"]),
            prop=str(data["property"]),
            chunk_size=int(data["chunk_size"]),
        )

    # ------------------------------------------------------------------
    # Expansion into a sweep plan
    # ------------------------------------------------------------------
    @property
    def table_count(self) -> int:
        """Number of tables the scenario verifies."""
        return self.robots.table_count

    def expand_patterns(self) -> list[int]:
        """The full, deterministic table bit-pattern stream."""
        if self.robots.sample is None:
            return list(range(family_space(self.robots.family)))
        return sample_table_patterns(
            family_space(self.robots.family),
            self.robots.sample,
            self.robots.rng_seed,
        )

    def chunks(self) -> list[tuple[int, ...]]:
        """The pattern stream cut into fixed-size checkpoint chunks.

        The cut depends only on the spec (never on worker count), so chunk
        index ``i`` names the same work in every run — the invariant that
        makes campaign checkpoints portable across interrupts and hosts.
        """
        patterns = self.expand_patterns()
        size = self.chunk_size
        return [
            tuple(patterns[i : i + size]) for i in range(0, len(patterns), size)
        ]

    @property
    def chunk_count(self) -> int:
        """Number of checkpoint chunks."""
        return -(-self.table_count // self.chunk_size)

    def is_runnable(self) -> bool:
        """Whether the exact solver can execute this scenario today.

        Both schedulers are executable since the scheduler-generic
        verification core landed; only the oblivious schedule-family
        dynamics remain declarative (simulation-harness workloads, an
        open ROADMAP item).
        """
        return self.dynamics == "highly-dynamic"

    def require_runnable(self) -> None:
        """Raise :class:`ScenarioError` when the solver cannot execute this."""
        if self.dynamics != "highly-dynamic":
            raise ScenarioError(
                f"scenario {self.name!r} declares dynamics {self.dynamics!r}; "
                "the exact solver executes the 'highly-dynamic' adversary "
                "only (schedule-family scenarios are declarative workloads "
                "for the simulation harnesses until the schedule-dynamics "
                "campaign execution ROADMAP item lands)"
            )

    def summary(self) -> str:
        """One-line human summary for listings."""
        size = (
            f"all {self.table_count}"
            if self.robots.sample is None
            else f"{self.table_count} sampled"
        )
        sched = "" if self.scheduler == "fsync" else f", scheduler={self.scheduler}"
        return (
            f"{self.name} [{self.scenario_id}]: {size} {self.robots.family!r} "
            f"tables, n={self.n}, k={self.robots.k}, starts={self.starts}, "
            f"property={self.prop}{sched} — {self.description}"
        )


__all__ = [
    "DYNAMICS_FAMILIES",
    "EXHAUSTIVE_LIMIT",
    "SCENARIO_FORMAT_VERSION",
    "RobotClassSpec",
    "ScenarioSpec",
]
