"""Declarative scenario specs: a verification workload as frozen data.

A :class:`ScenarioSpec` names everything that determines a sweep's outcome
and nothing that doesn't:

* a **dynamics family** — ``"highly-dynamic"`` (the unrestricted
  connected-over-time adversary the game solver plays) or one of the
  oblivious schedule families of
  :data:`repro.graph.schedules.SCHEDULE_FAMILIES`, in which case the spec
  also pins a concrete, hash-stable parameterization
  (``dynamics_params`` + ``dynamics_seed``, see
  :mod:`repro.scenarios.dynamics`) and a bounded simulation ``horizon``,
  and the campaign executes by *simulation*
  (:mod:`repro.scenarios.simulate`) instead of by exact game solving;
* a **scheduler** — ``"fsync"`` or ``"ssync"``
  (:data:`repro.sim.SCHEDULERS`); the exact solver executes both: under
  SSYNC the adversary additionally activates a non-empty robot subset
  each round, and a winning SCC must activate every robot (fairness);
* a **robot class** — a table family (:data:`repro.verification.sweeps
  .TABLE_FAMILIES`: memoryless single/two-robot, memory-2 two-robot),
  either exhausted or sampled with a seeded RNG;
* a **start policy** — the paper's well-initiated towerless starts or the
  self-stabilizing quantifier over arbitrary (ill-initiated, towers
  allowed) placements;
* a **property** — perpetual exploration (the paper's spec) or the
  at-least-once live exploration of Di Luna et al.

Specs are frozen dataclasses with a canonical JSON form
(:meth:`ScenarioSpec.to_dict`, round-tripped by :mod:`repro.serialize`)
and a stable content-hash identity (:attr:`ScenarioSpec.scenario_id`)
computed over the *semantic* payload only — renaming or re-describing a
scenario does not orphan its stored results, changing what it verifies
does. The chunking of the pattern stream (``chunk_size``) is part of the
payload because it defines the checkpoint boundaries a resumed campaign
must agree on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any

from repro.errors import ScenarioError
from repro.graph.schedules import SCHEDULE_FAMILIES
from repro.scenarios.dynamics import (
    DEFAULT_HORIZON,
    canonical_params,
    params_dict,
    validate_dynamics,
)
from repro.sim import SCHEDULERS
from repro.verification.enumeration import sample_table_patterns
from repro.verification.game import PROPERTIES
from repro.verification.sweeps import (
    START_POLICIES,
    TABLE_FAMILIES,
    family_k,
    family_space,
)

SCENARIO_FORMAT_VERSION = 1

#: Dynamics family names a scenario may declare. ``"highly-dynamic"`` is
#: the adversarial family of the paper's theorems — the one the exact
#: solver quantifies over; the schedule families are oblivious workloads
#: executed by the simulation chunk runner against their pinned
#: parameterization.
DYNAMICS_FAMILIES = ("highly-dynamic",) + tuple(sorted(SCHEDULE_FAMILIES))

#: The largest family a scenario may enumerate exhaustively; bigger
#: families (e.g. the 2**64 memory-2 class) must declare a sample.
EXHAUSTIVE_LIMIT = 1 << 16

#: Default sampling seed (the paper's submission date, as elsewhere).
DEFAULT_RNG_SEED = 20170605


@dataclass(frozen=True)
class RobotClassSpec:
    """The robot-class axis of a scenario: which tables, and how many.

    ``family`` picks the table class (and with it the robot count, the
    memory size and the chirality fallback plan); ``sample`` is ``None``
    for exhaustive enumeration or the number of distinct tables to draw
    deterministically with ``rng_seed``.
    """

    family: str
    sample: int | None = None
    rng_seed: int = DEFAULT_RNG_SEED

    def __post_init__(self) -> None:
        if self.sample is None:
            # The seed is meaningless without sampling: normalize it away
            # so it cannot perturb spec equality or the scenario content
            # hash (an exhaustive campaign must never be orphaned by a
            # seed nobody used).
            object.__setattr__(self, "rng_seed", DEFAULT_RNG_SEED)

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on any inconsistency."""
        if self.family not in TABLE_FAMILIES:
            raise ScenarioError(
                f"unknown table family {self.family!r}; "
                f"choose from {TABLE_FAMILIES}"
            )
        space = family_space(self.family)
        if self.sample is None:
            if space > EXHAUSTIVE_LIMIT:
                raise ScenarioError(
                    f"family {self.family!r} has {space} members; "
                    f"exhaustive scenarios are capped at {EXHAUSTIVE_LIMIT} — "
                    "declare a sample"
                )
        elif not 1 <= self.sample <= space:
            # A sample's cost scales with the sample, not the space, so
            # only the space itself bounds it (10^6-table memory-2
            # campaigns are a ROADMAP item, not a mistake).
            raise ScenarioError(
                f"sample must be in 1..{space} "
                f"for family {self.family!r}, got {self.sample}"
            )

    @property
    def k(self) -> int:
        """Robot count of the table family."""
        return family_k(self.family)

    @property
    def table_count(self) -> int:
        """Number of tables this class expands to."""
        if self.sample is None:
            return family_space(self.family)
        return self.sample

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form (embedded in the scenario encoding)."""
        return {
            "family": self.family,
            "sample": self.sample,
            "rng_seed": self.rng_seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RobotClassSpec":
        """Decode the :meth:`to_dict` form."""
        sample = data["sample"]
        return cls(
            family=str(data["family"]),
            sample=None if sample is None else int(sample),
            rng_seed=int(data["rng_seed"]),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload, fully determined by its fields.

    ``dynamics="highly-dynamic"`` specs are verification workloads (the
    exact game solver quantifies over every connected-over-time
    adversary). Any other ``dynamics`` names a schedule family and makes
    the spec a *simulation* workload: ``dynamics_params`` (a mapping,
    canonicalized to a JSON string at construction) plus
    ``dynamics_seed`` (required exactly for randomized families) pin the
    concrete evolving graph, and ``horizon`` bounds each table run (the
    exploration check is evaluated over that window — see
    :mod:`repro.scenarios.simulate`).
    """

    name: str
    description: str
    robots: RobotClassSpec
    n: int
    topology: str = "ring"
    dynamics: str = "highly-dynamic"
    scheduler: str = "fsync"
    starts: str = "well"
    prop: str = "perpetual"
    chunk_size: int = 256
    dynamics_params: Any = None
    dynamics_seed: int | None = None
    horizon: int | None = None

    def __post_init__(self) -> None:
        if self.dynamics != "highly-dynamic" and self.dynamics in SCHEDULE_FAMILIES:
            # Normalize the parameterization into its canonical, frozen
            # form *before* validation so equality, hashing and the
            # content hash all see one byte form per workload.
            object.__setattr__(
                self, "dynamics_params", canonical_params(self.dynamics_params)
            )
            if self.horizon is None:
                object.__setattr__(self, "horizon", DEFAULT_HORIZON)
        self.validate()

    def validate(self) -> None:
        """Raise :class:`ScenarioError` on any inconsistency."""
        if not self.name:
            raise ScenarioError("scenario name must be non-empty")
        if self.topology != "ring":
            raise ScenarioError(
                f"scenario topology must be 'ring' (sweeps run on rings), "
                f"got {self.topology!r}"
            )
        if self.dynamics not in DYNAMICS_FAMILIES:
            raise ScenarioError(
                f"unknown dynamics family {self.dynamics!r}; "
                f"choose from {DYNAMICS_FAMILIES}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ScenarioError(
                f"unknown scheduler {self.scheduler!r}; choose from {SCHEDULERS}"
            )
        if self.starts not in START_POLICIES:
            raise ScenarioError(
                f"unknown start policy {self.starts!r}; "
                f"choose from {START_POLICIES}"
            )
        if self.prop not in PROPERTIES:
            raise ScenarioError(
                f"unknown property {self.prop!r}; choose from {PROPERTIES}"
            )
        if self.chunk_size < 1:
            raise ScenarioError(f"chunk_size must be >= 1, got {self.chunk_size}")
        self.robots.validate()
        if self.n < 3:
            raise ScenarioError(f"scenario rings need n >= 3, got n={self.n}")
        if self.starts == "well" and self.robots.k >= self.n:
            raise ScenarioError(
                f"well-initiated starts need k < n, got k={self.robots.k}, "
                f"n={self.n}"
            )
        if self.dynamics == "highly-dynamic":
            if (
                self.dynamics_params is not None
                or self.dynamics_seed is not None
                or self.horizon is not None
            ):
                raise ScenarioError(
                    "dynamics_params/dynamics_seed/horizon only apply to "
                    "schedule-family dynamics; the 'highly-dynamic' "
                    "adversary is unparameterized (the solver quantifies "
                    "over every connected-over-time schedule)"
                )
        else:
            # Loud, construction-time gate: a schedule-family spec that
            # validates is guaranteed instantiable in every chunk worker.
            validate_dynamics(
                self.dynamics, self.dynamics_params, self.dynamics_seed, self.n
            )
            if self.horizon < 1:
                raise ScenarioError(
                    f"simulation horizon must be >= 1, got {self.horizon}"
                )

    # ------------------------------------------------------------------
    # Identity and encoding
    # ------------------------------------------------------------------
    def payload_dict(self) -> dict[str, Any]:
        """The semantic payload: every field that affects results.

        ``name`` and ``description`` are presentation metadata and are
        deliberately excluded — the scenario hash identifies the
        *workload*, so stored results survive renames.

        The schedule-parameterization keys appear only for
        schedule-family dynamics, so every pre-existing
        ``"highly-dynamic"`` scenario keeps its historical content hash
        (and with it every stored campaign result).
        """
        payload: dict[str, Any] = {
            "version": SCENARIO_FORMAT_VERSION,
            "topology": self.topology,
            "n": self.n,
            "dynamics": self.dynamics,
            "scheduler": self.scheduler,
            "robots": self.robots.to_dict(),
            "starts": self.starts,
            "property": self.prop,
            "chunk_size": self.chunk_size,
        }
        if self.dynamics != "highly-dynamic":
            payload["dynamics_params"] = params_dict(self.dynamics_params)
            payload["dynamics_seed"] = self.dynamics_seed
            payload["horizon"] = self.horizon
        return payload

    @property
    def scenario_id(self) -> str:
        """Stable content-hash identity (16 hex chars).

        SHA-256 over the canonical JSON of :meth:`payload_dict` (sorted
        keys, minimal separators) — the same spec hashes identically on
        every machine and Python version.
        """
        canonical = json.dumps(
            self.payload_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> dict[str, Any]:
        """Versioned JSON-ready encoding (see :mod:`repro.serialize`)."""
        data: dict[str, Any] = {
            "format": "scenario",
            "name": self.name,
            "description": self.description,
        }
        data.update(self.payload_dict())
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ScenarioSpec":
        """Decode (and re-validate) the :meth:`to_dict` form."""
        if data.get("format") != "scenario":
            raise ScenarioError(
                f"expected format 'scenario', got {data.get('format')!r}"
            )
        if data.get("version") != SCENARIO_FORMAT_VERSION:
            raise ScenarioError(
                f"unsupported scenario version {data.get('version')!r} "
                f"(this library reads version {SCENARIO_FORMAT_VERSION})"
            )
        seed = data.get("dynamics_seed")
        horizon = data.get("horizon")
        return cls(
            name=str(data["name"]),
            description=str(data["description"]),
            robots=RobotClassSpec.from_dict(data["robots"]),
            n=int(data["n"]),
            topology=str(data["topology"]),
            dynamics=str(data["dynamics"]),
            scheduler=str(data["scheduler"]),
            starts=str(data["starts"]),
            prop=str(data["property"]),
            chunk_size=int(data["chunk_size"]),
            dynamics_params=data.get("dynamics_params"),
            dynamics_seed=None if seed is None else int(seed),
            horizon=None if horizon is None else int(horizon),
        )

    # ------------------------------------------------------------------
    # Expansion into a sweep plan
    # ------------------------------------------------------------------
    @property
    def table_count(self) -> int:
        """Number of tables the scenario verifies."""
        return self.robots.table_count

    def expand_patterns(self) -> list[int]:
        """The full, deterministic table bit-pattern stream."""
        if self.robots.sample is None:
            return list(range(family_space(self.robots.family)))
        return sample_table_patterns(
            family_space(self.robots.family),
            self.robots.sample,
            self.robots.rng_seed,
        )

    def chunks(self) -> list[tuple[int, ...]]:
        """The pattern stream cut into fixed-size checkpoint chunks.

        The cut depends only on the spec (never on worker count), so chunk
        index ``i`` names the same work in every run — the invariant that
        makes campaign checkpoints portable across interrupts and hosts.
        """
        patterns = self.expand_patterns()
        size = self.chunk_size
        return [
            tuple(patterns[i : i + size]) for i in range(0, len(patterns), size)
        ]

    @property
    def chunk_count(self) -> int:
        """Number of checkpoint chunks."""
        return -(-self.table_count // self.chunk_size)

    def summary(self) -> str:
        """One-line human summary for listings."""
        size = (
            f"all {self.table_count}"
            if self.robots.sample is None
            else f"{self.table_count} sampled"
        )
        sched = "" if self.scheduler == "fsync" else f", scheduler={self.scheduler}"
        dyn = (
            ""
            if self.dynamics == "highly-dynamic"
            else f", dynamics={self.dynamics} (sim, horizon={self.horizon})"
        )
        return (
            f"{self.name} [{self.scenario_id}]: {size} {self.robots.family!r} "
            f"tables, n={self.n}, k={self.robots.k}, starts={self.starts}, "
            f"property={self.prop}{sched}{dyn} — {self.description}"
        )


__all__ = [
    "DYNAMICS_FAMILIES",
    "EXHAUSTIVE_LIMIT",
    "SCENARIO_FORMAT_VERSION",
    "RobotClassSpec",
    "ScenarioSpec",
]
