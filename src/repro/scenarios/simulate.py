"""The simulation chunk runner: schedule-dynamics campaigns, table by table.

The exact game solver quantifies over *every* connected-over-time
adversary (``dynamics="highly-dynamic"``). The restricted dynamicity
classes of the paper's related work — periodic rings (Ilcinkas–Wade),
T-interval-connected rings (Kuhn–Lynch–Oshman; Di Luna et al.), random
presence — are a different kind of question: one *fixed* evolving graph,
pinned by the spec's family + params + seed, against which every table of
a robot class is **simulated** over a bounded horizon. This module is the
execution path for those workloads, shaped exactly like
:func:`repro.verification.sweeps.sweep_chunk` so the campaign store,
resume, dedup and report machinery apply unchanged:

* :func:`simulate_chunk` — verify one chunk of table bit-patterns against
  the spec's schedule; returns the same ``(total, trapped, explorers,
  states)`` tally tuple the verification path checkpoints (``states``
  counts simulated rounds — the work proxy of this path);
* one table is **trapped** when *some* chirality vector of the family's
  fallback plan and *some* start placement fails the bounded-horizon
  exploration check — the same universal quantification the solver
  applies, evaluated on the concrete schedule;
* the bounded-horizon check mirrors the two game properties:
  ``prop="live"`` demands every node visited at least once within the
  horizon; ``prop="perpetual"`` demands every node visited in *both*
  halves of the horizon (a finite recurrence proxy: visits that stop
  after the first half fail it).

Start placements are **not** rotation-reduced here: a concrete schedule
names absolute edges at absolute times, so ring rotations are *not*
execution-isomorphic (unlike under the universally-quantified adversary).
``starts="well"`` expands to every ordered towerless placement,
``starts="arbitrary"`` to every ordered placement, towers included.

Determinism: a chunk worker rebuilds the schedule from the spec (seeded
families reproduce their draws exactly — see
:mod:`repro.scenarios.dynamics`), precomputes the horizon's present-edge
sets once, and runs each table from round 0 — so a chunk's tally is a
pure function of ``(spec, chunk)``: identical across worker counts,
interrupts and hosts, which is what makes simulation campaign reports
byte-identical under resume.

Under ``scheduler="ssync"`` each round activates exactly one robot,
round-robin (``t mod k``) — a deterministic, fair activation schedule
(every robot acts every ``k`` rounds), the oblivious counterpart of the
solver's adversarial activation subsets.
"""

from __future__ import annotations

import itertools
from typing import Optional, Sequence

from repro.graph.topology import RingTopology, towerless_placements
from repro.robots.algorithms.base import Algorithm
from repro.scenarios.dynamics import build_schedule
from repro.scenarios.spec import ScenarioSpec
from repro.sim.engine import make_initial_configuration, step_fsync
from repro.sim.semi_sync import step_ssync
from repro.types import Chirality, EdgeId, NodeId, RobotId
from repro.verification.sweeps import family_maker, family_plan

_ChunkOutcome = tuple[int, int, list[str], int]
"""(total, trapped, explorer names in input order, rounds simulated)."""


def simulation_placements(
    starts: str, topology: RingTopology, k: int
) -> list[tuple[NodeId, ...]]:
    """Every start placement a simulated table must survive.

    Rotation reduction is deliberately absent (see the module docstring):
    ``"well"`` is all ordered towerless placements, ``"arbitrary"`` all
    ordered placements including towers.
    """
    if starts == "well":
        return list(towerless_placements(topology, k))
    return list(itertools.product(topology.nodes, repeat=k))


def _bounded_explores(
    topology: RingTopology,
    algorithm: Algorithm,
    steps: Sequence[frozenset[EdgeId]],
    activations: Optional[Sequence[frozenset[RobotId]]],
    placement: Sequence[NodeId],
    chiralities: Sequence[Chirality],
    prop: str,
) -> tuple[bool, int]:
    """One bounded run; returns ``(explored, rounds executed)``.

    Early exits keep trapped tables cheap: a ``live`` run stops the round
    every node has been seen, and a ``perpetual`` run fails at mid-horizon
    if the first window already missed a node (the second window cannot
    repair it) and succeeds the round the second window completes.
    """
    configuration = make_initial_configuration(
        topology, algorithm, placement, chiralities
    )
    nodes = frozenset(topology.nodes)
    horizon = len(steps)
    mid = horizon // 2
    seen = set(configuration.positions)
    late: set[NodeId] = set()
    if prop == "live" and seen == nodes:
        return True, 0
    for t in range(horizon):
        if activations is None:
            configuration, _views, _moved = step_fsync(
                topology, algorithm, configuration, steps[t]
            )
        else:
            configuration, _views, _moved = step_ssync(
                topology, algorithm, configuration, steps[t], activations[t]
            )
        if t < mid:
            seen.update(configuration.positions)
        else:
            late.update(configuration.positions)
        if prop == "live":
            if seen | late == nodes:
                return True, t + 1
        else:
            if t + 1 == mid and seen != nodes:
                # The first window already starved a node: recurrence
                # within the horizon is unachievable, stop here.
                return False, t + 1
            if seen == nodes and late == nodes:
                return True, t + 1
    if prop == "live":
        return seen | late == nodes, horizon
    return seen == nodes and late == nodes, horizon


def simulate_chunk(spec: ScenarioSpec, bits_chunk: Sequence[int]) -> _ChunkOutcome:
    """Simulate one chunk of table bit-patterns against the spec's schedule.

    The simulation twin of :func:`repro.verification.sweeps.sweep_chunk`
    and the unit of work the campaign runner checkpoints for
    schedule-dynamics scenarios. Deterministic for a fixed
    ``(spec, bits_chunk)`` pair — re-runnable on any worker, process or
    host with an identical tally.
    """
    topology = RingTopology(spec.n)
    schedule = build_schedule(
        spec.dynamics, spec.dynamics_params, spec.dynamics_seed, topology
    )
    assert spec.horizon is not None  # guaranteed by spec validation
    steps = [schedule.present_edges(t) for t in range(spec.horizon)]
    k = spec.robots.k
    activations = (
        None
        if spec.scheduler == "fsync"
        else [frozenset({t % k}) for t in range(spec.horizon)]
    )
    placements = simulation_placements(spec.starts, topology, k)
    maker = family_maker(spec.robots.family)
    vectors = [
        tuple(vector)
        for stage in family_plan(spec.robots.family)
        for vector in stage
    ]
    total = trapped = rounds = 0
    explorers: list[str] = []
    for bits in bits_chunk:
        algorithm = maker(bits)
        hit = False
        for chiralities in vectors:
            for placement in placements:
                explored, executed = _bounded_explores(
                    topology,
                    algorithm,
                    steps,
                    activations,
                    placement,
                    chiralities,
                    spec.prop,
                )
                rounds += executed
                if not explored:
                    hit = True
                    break
            if hit:
                break
        total += 1
        if hit:
            trapped += 1
        else:
            explorers.append(algorithm.name)
    return total, trapped, explorers, rounds


__all__ = [
    "simulate_chunk",
    "simulation_placements",
]
