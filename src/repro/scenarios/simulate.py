"""The simulation chunk runner: schedule-dynamics campaigns, table by table.

The exact game solver quantifies over *every* connected-over-time
adversary (``dynamics="highly-dynamic"``). The restricted dynamicity
classes of the paper's related work — periodic rings (Ilcinkas–Wade),
T-interval-connected rings (Kuhn–Lynch–Oshman; Di Luna et al.), random
presence — are a different kind of question: one *fixed* evolving graph,
pinned by the spec's family + params + seed, against which every table of
a robot class is **simulated** over a bounded horizon. This module is the
execution path for those workloads, shaped exactly like
:func:`repro.verification.sweeps.sweep_chunk` so the campaign store,
resume, dedup and report machinery apply unchanged:

* :func:`simulate_chunk` — verify one chunk of table bit-patterns against
  the spec's schedule; returns the same ``(total, trapped, explorers,
  states)`` tally tuple the verification path checkpoints (``states``
  counts simulated rounds — the work proxy of this path);
* one table is **trapped** when *some* chirality vector of the family's
  fallback plan and *some* start placement fails the bounded-horizon
  exploration check — the same universal quantification the solver
  applies, evaluated on the concrete schedule;
* the bounded-horizon check mirrors the two game properties:
  ``prop="live"`` demands every node visited at least once within the
  horizon; ``prop="perpetual"`` demands every node visited in *both*
  halves of the horizon (a finite recurrence proxy: visits that stop
  after the first half fail it).

**Backends.** Like the exact path, the simulation path has multiple
execution substrates with one semantics:

* ``backend="vector"`` (the fastest; requires NumPy, an *optional*
  dependency) stacks every table's flat compiled tables into one array
  and steps all (table, chirality-vector, placement) runs of a chunk in
  NumPy lockstep — structure-of-arrays rows, one fancy-index gather per
  robot per round, per-row done masks with periodic compaction
  (:mod:`repro.verification.batch`);
* ``backend="packed"`` compiles each table once per
  chirality vector into flat integer tables
  (:class:`~repro.verification.compiled.CompiledTables` — the same
  compilation the game solver's :class:`~repro.verification.kernel
  .PackedKernel` consumes), precompiles the schedule into an edge-bitmask
  array (:func:`~repro.scenarios.dynamics.schedule_masks`) and the SSYNC
  round-robin activations into an activation-mask array, and runs the
  bounded-horizon check on packed occupancy bitsets;
* ``backend="object"`` drives :func:`repro.sim.engine.step_fsync` /
  :func:`repro.sim.semi_sync.step_ssync` per round — the semantics
  oracle, kept as the differential reference.

All backends produce byte-identical tallies (differentially tested in
``tests/test_simulate.py`` and ``tests/test_batch.py``), so the backend
is an execution detail, never part of a scenario's identity: scenario
hashes, chunk records and campaign report bytes are backend-independent,
and a campaign checkpointed under one backend resumes cleanly under any
other. ``backend="auto"`` (the default) resolves vector → packed by
NumPy availability; the backend registry
(:mod:`repro.verification.backends`) is the single source of the choice
set shared with the CLI and the campaign runner.

Start placements are **not** rotation-reduced here: a concrete schedule
names absolute edges at absolute times, so ring rotations are *not*
execution-isomorphic (unlike under the universally-quantified adversary).
``starts="well"`` expands to every ordered towerless placement,
``starts="arbitrary"`` to every ordered placement, towers included.

Determinism: a chunk worker rebuilds the schedule from the spec (seeded
families reproduce their draws exactly — see
:mod:`repro.scenarios.dynamics`), precomputes the horizon's present-edge
sets once, and runs each table from round 0 — so a chunk's tally is a
pure function of ``(spec, chunk)``: identical across worker counts,
backends, interrupts and hosts, which is what makes simulation campaign
reports byte-identical under resume.

Under ``scheduler="ssync"`` each round activates exactly one robot,
round-robin (``t mod k``) — a deterministic, fair activation schedule
(every robot acts every ``k`` rounds), the oblivious counterpart of the
solver's adversarial activation subsets.
"""

from __future__ import annotations

import itertools
import time
from typing import Optional, Sequence

from repro import telemetry
from repro.graph.topology import RingTopology, towerless_placements
from repro.scenarios import faults
from repro.robots.algorithms.base import Algorithm
from repro.scenarios.dynamics import build_schedule, schedule_masks
from repro.scenarios.spec import ScenarioSpec
from repro.sim.engine import make_initial_configuration, step_fsync
from repro.sim.semi_sync import step_ssync
from repro.types import Chirality, EdgeId, NodeId, RobotId
from repro.verification.backends import resolve_simulation_backend
from repro.verification.compiled import CompiledTables
from repro.verification.sweeps import family_maker, family_plan

_ChunkOutcome = tuple[int, int, list[str], int]
"""(total, trapped, explorer names in input order, rounds simulated)."""


def simulation_placements(
    starts: str, topology: RingTopology, k: int
) -> list[tuple[NodeId, ...]]:
    """Every start placement a simulated table must survive.

    Rotation reduction is deliberately absent (see the module docstring):
    ``"well"`` is all ordered towerless placements, ``"arbitrary"`` all
    ordered placements including towers.
    """
    if starts == "well":
        return list(towerless_placements(topology, k))
    return list(itertools.product(topology.nodes, repeat=k))


def _bounded_explores(
    topology: RingTopology,
    algorithm: Algorithm,
    steps: Sequence[frozenset[EdgeId]],
    activations: Optional[Sequence[frozenset[RobotId]]],
    placement: Sequence[NodeId],
    chiralities: Sequence[Chirality],
    prop: str,
) -> tuple[bool, int]:
    """One bounded run on the object engines; returns ``(explored, rounds)``.

    Early exits keep trapped tables cheap: a ``live`` run stops the round
    every node has been seen, and a ``perpetual`` run fails at mid-horizon
    if the first window already missed a node (the second window cannot
    repair it) and succeeds the round the second window completes.
    """
    configuration = make_initial_configuration(
        topology, algorithm, placement, chiralities
    )
    nodes = frozenset(topology.nodes)
    horizon = len(steps)
    mid = horizon // 2
    seen = set(configuration.positions)
    late: set[NodeId] = set()
    if prop == "live" and seen == nodes:
        return True, 0
    for t in range(horizon):
        if activations is None:
            configuration, _views, _moved = step_fsync(
                topology, algorithm, configuration, steps[t]
            )
        else:
            configuration, _views, _moved = step_ssync(
                topology, algorithm, configuration, steps[t], activations[t]
            )
        if t < mid:
            seen.update(configuration.positions)
        else:
            late.update(configuration.positions)
        if prop == "live":
            if seen | late == nodes:
                return True, t + 1
        else:
            if t + 1 == mid and seen != nodes:
                # The first window already starved a node: recurrence
                # within the horizon is unachievable, stop here.
                return False, t + 1
            if seen == nodes and late == nodes:
                return True, t + 1
    if prop == "live":
        return seen | late == nodes, horizon
    return seen == nodes and late == nodes, horizon


def _bounded_explores_packed(
    tables: CompiledTables,
    masks: Sequence[int],
    ssync: bool,
    placement: Sequence[NodeId],
    prop: str,
    full_nodes: int,
) -> tuple[bool, int]:
    """The packed twin of :func:`_bounded_explores`.

    Identical early-exit structure, identical round counts — ``seen`` and
    ``late`` are occupancy bitsets instead of node sets, and each round
    consults the compiled flat tables
    (:meth:`CompiledTables.simulation_tables`) on in-place per-robot
    position/state arrays instead of stepping an engine over frozensets.
    A robot's view reads only its own slot plus the precomputed
    multiplicity bits, so slots update in place mid-round without
    perturbing the simultaneous Look — the same order-independence
    ``step_packed`` relies on.
    """
    transitions, dir_bits, robot_tables, initial_index = (
        tables.simulation_tables()
    )
    k = tables.k
    all_robots = tuple(range(k))
    horizon = len(masks)
    mid = horizon // 2
    positions = list(placement)
    states = [initial_index] * k
    seen = 0
    for position in positions:
        seen |= 1 << position
    late = 0
    if prop == "live" and seen == full_nodes:
        return True, 0
    live = prop == "live"
    for t in range(horizon):
        mask = masks[t]
        occupied = 0
        towers = 0
        for position in positions:
            bit = 1 << position
            if occupied & bit:
                towers |= bit
            occupied |= bit
        occupancy = 0
        if ssync:
            # Round-robin SSYNC: exactly robot t mod k acts this round.
            active = (t % k,)
        else:
            active = all_robots
        for i in active:
            left_masks, right_masks, move_masks, move_dests = robot_tables[i]
            position = positions[i]
            view = states[i] * 8
            if mask & left_masks[position]:
                view += 4
            if mask & right_masks[position]:
                view += 2
            if towers >> position & 1:
                view += 1
            new_state = transitions[view]
            pointer = position * 2 + dir_bits[new_state]
            if mask & move_masks[pointer]:
                positions[i] = move_dests[pointer]
            states[i] = new_state
        for position in positions:
            occupancy |= 1 << position
        if t < mid:
            seen |= occupancy
        else:
            late |= occupancy
        if live:
            if seen | late == full_nodes:
                return True, t + 1
        else:
            if t + 1 == mid and seen != full_nodes:
                return False, t + 1
            if seen == full_nodes and late == full_nodes:
                return True, t + 1
    if live:
        return seen | late == full_nodes, horizon
    return seen == full_nodes and late == full_nodes, horizon


def simulate_chunk(
    spec: ScenarioSpec, bits_chunk: Sequence[int], backend: str = "auto"
) -> _ChunkOutcome:
    """Simulate one chunk of table bit-patterns against the spec's schedule.

    The simulation twin of :func:`repro.verification.sweeps.sweep_chunk`
    and the unit of work the campaign runner checkpoints for
    schedule-dynamics scenarios. Deterministic for a fixed
    ``(spec, bits_chunk)`` pair — re-runnable on any backend, worker,
    process or host with an identical tally. ``backend`` picks the
    execution substrate (``"vector"``/``"packed"``/``"object"``; see the
    module docstring); ``"auto"`` resolves to the fastest available one
    (:func:`repro.verification.backends.resolve_simulation_backend`).
    """
    backend = resolve_simulation_backend(backend)
    topology = RingTopology(spec.n)
    schedule = build_schedule(
        spec.dynamics, spec.dynamics_params, spec.dynamics_seed, topology
    )
    assert spec.horizon is not None  # guaranteed by spec validation
    k = spec.robots.k
    placements = simulation_placements(spec.starts, topology, k)
    maker = family_maker(spec.robots.family)
    vectors = [
        tuple(vector)
        for stage in family_plan(spec.robots.family)
        for vector in stage
    ]
    total = trapped = rounds = 0
    explorers: list[str] = []
    faults.fault_point("simulate-entry")
    midpoint = len(bits_chunk) // 2

    # Phase accounting, armed-gated so the untraced hot loop pays one
    # boolean. Compile time is accumulated around the explicit
    # compilation work (schedule masks / step precompute, per-table
    # CompiledTables construction); simulate time is the chunk remainder.
    # Emitted once per chunk as phase.* spans — purely observational, the
    # tally below never depends on it.
    traced = telemetry.armed()
    compile_s = 0.0
    chunk_start = time.perf_counter() if traced else 0.0

    def _emit_phases() -> None:
        if not traced:
            return
        simulate_s = max(0.0, time.perf_counter() - chunk_start - compile_s)
        telemetry.phase("compile", compile_s, tables=len(bits_chunk))
        telemetry.phase("simulate", simulate_s, tables=len(bits_chunk))

    if backend == "vector":
        # The NumPy lockstep kernel: compile every table of the chunk
        # into one stacked flat-table array, then step all
        # (table, chirality-vector, placement) runs at once. The kernel
        # reproduces the scalar first-failure accounting exactly
        # (see repro.verification.batch), so the tally below is
        # byte-identical to the packed path's.
        from repro.verification import batch

        mark = time.perf_counter()
        masks = schedule_masks(schedule, spec.horizon)
        compiled = [
            CompiledTables(
                topology, maker(bits), vectors[0], scheduler=spec.scheduler
            )
            for bits in bits_chunk
        ]
        compile_s = time.perf_counter() - mark
        if midpoint:
            faults.fault_point("simulate-mid")
        trapped_flags, rounds, timings = batch.simulate_batch(
            topology,
            compiled,
            vectors,
            placements,
            masks,
            spec.scheduler == "ssync",
            spec.prop,
        )
        total = len(bits_chunk)
        trapped = sum(trapped_flags)
        explorers = [
            tables.algorithm.name
            for tables, hit in zip(compiled, trapped_flags)
            if not hit
        ]
        if traced:
            telemetry.phase(
                "compile", compile_s + timings["compile"], tables=total
            )
            telemetry.phase("gather", timings["gather"], tables=total)
            telemetry.phase("compact", timings["compact"], tables=total)
        return total, trapped, explorers, rounds

    if backend == "packed":
        # One schedule compilation per chunk: the horizon's present-edge
        # sets become a flat edge-bitmask array; under SSYNC the
        # round-robin activation is folded into the round body.
        if traced:
            mark = time.perf_counter()
        masks = schedule_masks(schedule, spec.horizon)
        if traced:
            compile_s += time.perf_counter() - mark
        ssync = spec.scheduler == "ssync"
        full_nodes = (1 << spec.n) - 1
        for position, bits in enumerate(bits_chunk):
            if position == midpoint and position:
                faults.fault_point("simulate-mid")
            algorithm = maker(bits)
            hit = False
            for chiralities in vectors:
                if traced:
                    mark = time.perf_counter()
                tables = CompiledTables(
                    topology, algorithm, chiralities, scheduler=spec.scheduler
                )
                if traced:
                    compile_s += time.perf_counter() - mark
                for placement in placements:
                    explored, executed = _bounded_explores_packed(
                        tables, masks, ssync, placement, spec.prop, full_nodes
                    )
                    rounds += executed
                    if not explored:
                        hit = True
                        break
                if hit:
                    break
            total += 1
            if hit:
                trapped += 1
            else:
                explorers.append(algorithm.name)
        _emit_phases()
        return total, trapped, explorers, rounds

    if traced:
        mark = time.perf_counter()
    steps = [schedule.present_edges(t) for t in range(spec.horizon)]
    activations = (
        None
        if spec.scheduler == "fsync"
        else [frozenset({t % k}) for t in range(spec.horizon)]
    )
    if traced:
        compile_s += time.perf_counter() - mark
    for position, bits in enumerate(bits_chunk):
        if position == midpoint and position:
            faults.fault_point("simulate-mid")
        algorithm = maker(bits)
        hit = False
        for chiralities in vectors:
            for placement in placements:
                explored, executed = _bounded_explores(
                    topology,
                    algorithm,
                    steps,
                    activations,
                    placement,
                    chiralities,
                    spec.prop,
                )
                rounds += executed
                if not explored:
                    hit = True
                    break
            if hit:
                break
        total += 1
        if hit:
            trapped += 1
        else:
            explorers.append(algorithm.name)
    _emit_phases()
    return total, trapped, explorers, rounds


__all__ = [
    "simulate_chunk",
    "simulation_placements",
]
