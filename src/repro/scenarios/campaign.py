"""The persistent campaign runner: resumable sweeps over scenario specs.

A *campaign* is one scenario executed to completion, checkpointed chunk by
chunk in a :class:`~repro.scenarios.store.ResultStore`. Every registered
dynamics family is executable: ``"highly-dynamic"`` scenarios run on the
exact game solver (:func:`~repro.verification.sweeps.sweep_chunk`), and
schedule-family scenarios run on the simulation chunk runner
(:func:`~repro.scenarios.simulate.simulate_chunk`) against their pinned
schedule parameterization. Both paths produce the same record schema and
both offer the same backend family with byte-identical tallies — a NumPy
``vector`` lockstep kernel, a packed int kernel and an object oracle on
either path (``auto``, the default choice, resolves vector → packed by
NumPy availability) — so the store, resume, dedup and reporting
machinery below is shared — and backend-agnostic. The
contract:

* **Deterministic work units.** The scenario expands to a fixed pattern
  stream cut into fixed-size chunks (never dependent on worker count), and
  the chunk runner of either path tallies each chunk identically on any
  backend, worker or host.
* **Interrupt safety.** A chunk checkpoints only once settled; killing a
  campaign loses at most the chunks in flight. Resuming verifies exactly
  the missing chunks and produces a final report *byte-identical* to an
  uninterrupted run's — the report is a pure function of the spec and the
  per-chunk tallies, merged in chunk order. SIGINT/SIGTERM are caught at
  chunk boundaries, so a Ctrl-C never tears a non-final record.
* **Dedup.** Re-running a completed campaign is a cache hit: zero chunks
  re-verified, the same report bytes re-emitted.
* **Fault tolerance.** With ``jobs > 1`` every chunk runs in a
  *supervised* worker process: the runner detects dead workers (a crash
  is an event, not a hang), enforces the :class:`RetryPolicy` per-chunk
  deadline, and respawns failed attempts with exponentially backed-off,
  deterministically jittered retries. A chunk that exhausts its attempts
  is *quarantined* — recorded as failed in the store — and the campaign
  settles **degraded** instead of losing the run; ``campaign
  retry-failed`` re-executes exactly the quarantined chunks.

The runner parallelizes *across* chunks (``jobs``), writing each record
as its chunk lands; record order on disk is scheduling-dependent, merged
order never is.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import Connection, wait as connection_wait
from pathlib import Path
from typing import Any, Iterable, Iterator, Optional

from repro.errors import (
    CampaignDegradedError,
    CampaignIncompleteError,
    CampaignInterruptedError,
    ChunkPoisonedError,
    ScenarioError,
    StoreCorruptionError,
    VerificationError,
    WorkerCrashError,
)
from repro import telemetry
from repro.scenarios import faults
from repro.scenarios.faults import FaultPlan
from repro.telemetry import TelemetryConfig
from repro.scenarios.simulate import simulate_chunk
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import (
    RecoveryReport,
    ResultStore,
    chunk_digest,
    is_failure_record,
)
from repro.verification.backends import (
    check_backend_choice,
    resolve_simulation_backend,
    resolve_solver_backend,
)
from repro.verification.sweeps import resolve_jobs, sweep_chunk

CAMPAIGN_REPORT_VERSION = 1

# How long the supervisor blocks in one wait() round. Bounds the latency
# of signal delivery (the flag is only *checked* between waits) and of
# backoff-retry promotion, without busy-polling.
_SUPERVISOR_TICK_SECONDS = 0.2

_Payload = tuple[int, dict[str, Any], tuple[int, ...], str, bool]
"""(chunk index, spec encoding, bit patterns, backend, validate).

The spec rides along as its :meth:`ScenarioSpec.to_dict` form — plainly
picklable, and the worker re-validates it on decode, so a chunk can never
execute against a spec its own construction-time gate would refuse.
``backend`` selects the execution substrate on *both* dispatch paths
(packed kernel vs object oracle for the exact solver; vector lockstep
vs compiled tables vs object engines for the simulation runner), always
as a *concrete* name — ``auto`` is resolved by the parent before
dispatch. It is hash-neutral — never part of the spec payload, the
chunk records or the report bytes.
"""


@dataclass(frozen=True)
class RetryPolicy:
    """How the runner treats a chunk that crashes, hangs, or errors.

    ``chunk_timeout`` (seconds; ``None`` disables) is enforced on the
    supervised multi-process path only — an in-process chunk cannot be
    preempted. Backoff before attempt ``k+1`` is
    ``min(cap, base * 2**(k-1))`` scaled by a deterministic jitter into
    ``[0.5, 1.0)`` of itself (:func:`repro.scenarios.faults.backoff_delay`).
    With ``quarantine`` (the default) a chunk that fails every attempt is
    recorded as failed and the campaign settles degraded; without it the
    run raises :class:`~repro.errors.ChunkPoisonedError` instead.
    """

    max_attempts: int = 3
    chunk_timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    quarantine: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ScenarioError(
                f"max_attempts must be >= 1, got {self.max_attempts!r}"
            )
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ScenarioError(
                f"chunk_timeout must be > 0 (or None), got {self.chunk_timeout!r}"
            )
        if self.backoff_base < 0:
            raise ScenarioError(
                f"backoff_base must be >= 0, got {self.backoff_base!r}"
            )
        if self.backoff_cap < self.backoff_base:
            raise ScenarioError(
                f"backoff_cap must be >= backoff_base, got {self.backoff_cap!r}"
            )


@dataclass(frozen=True)
class CampaignStatus:
    """Progress and partial tallies of one campaign.

    ``chunks_done`` counts *verified* chunks only; quarantined chunks are
    ``chunks_failed`` (their indices in ``failed_chunks``) and contribute
    nothing to the tallies.
    """

    name: str
    scenario_id: str
    chunks_total: int
    chunks_done: int
    chunks_failed: int
    failed_chunks: tuple[int, ...]
    total: int
    trapped: int
    explorers: tuple[str, ...]
    states_explored: int

    @property
    def complete(self) -> bool:
        """Whether every chunk verified successfully."""
        return self.chunks_done == self.chunks_total

    @property
    def settled(self) -> bool:
        """Whether every chunk is accounted for (verified *or* failed)."""
        return self.chunks_done + self.chunks_failed == self.chunks_total

    @property
    def degraded(self) -> bool:
        """Whether the campaign settled with quarantined chunks."""
        return self.settled and self.chunks_failed > 0

    @property
    def all_trapped(self) -> bool:
        """Whether the campaign *completed* with every member trapped.

        Deliberately false for partial or degraded campaigns, however
        unanimous the tallies so far: the theorems' claim is about the
        whole class, and a sliced, interrupted or quarantine-holed run
        must not read as a discharge.
        """
        return self.complete and self.trapped == self.total and not self.explorers

    def summary(self) -> str:
        """One-line human summary for the CLI."""
        if self.complete:
            state = "complete"
        elif self.degraded:
            state = "degraded"
        else:
            state = "in progress"
        line = (
            f"{self.name} [{self.scenario_id}] {state}: "
            f"{self.chunks_done}/{self.chunks_total} chunks, "
            f"{self.trapped}/{self.total} trapped"
            + (f", {len(self.explorers)} explorers" if self.explorers else "")
        )
        if self.chunks_failed:
            line += (
                f"; {self.chunks_failed} chunks quarantined "
                f"{list(self.failed_chunks)} — `campaign retry-failed`"
            )
        return line

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form (``campaign status --json``).

        Fields plus the derived predicates, so consumers never
        re-implement the settled/degraded logic.
        """
        return {
            "name": self.name,
            "scenario_id": self.scenario_id,
            "chunks_total": self.chunks_total,
            "chunks_done": self.chunks_done,
            "chunks_failed": self.chunks_failed,
            "failed_chunks": list(self.failed_chunks),
            "total": self.total,
            "trapped": self.trapped,
            "explorers": list(self.explorers),
            "states_explored": self.states_explored,
            "complete": self.complete,
            "settled": self.settled,
            "degraded": self.degraded,
            "all_trapped": self.all_trapped,
        }


@dataclass(frozen=True)
class CampaignRunOutcome:
    """What one :meth:`CampaignRunner.run` call did."""

    status: CampaignStatus
    chunks_run: int
    chunks_cached: int
    report_path: Optional[Path]

    def summary(self) -> str:
        """One-line human summary for the CLI."""
        line = (
            f"{self.status.summary()} — ran {self.chunks_run} chunks, "
            f"{self.chunks_cached} cached"
        )
        if self.report_path is not None:
            line += f"; report: {self.report_path}"
        return line


def _campaign_chunk(payload: _Payload) -> tuple[int, tuple]:
    """Run one indexed chunk (worker body; top-level to pickle).

    Dispatches on the spec's dynamics: the exact solver for the
    highly-dynamic adversary, the simulation runner for schedule
    families. Both return the same tally shape.
    """
    index, spec_data, chunk, backend, validate = payload
    spec = ScenarioSpec.from_dict(spec_data)
    if spec.dynamics == "highly-dynamic":
        return index, sweep_chunk(
            spec.robots.family,
            spec.n,
            chunk,
            backend,
            validate,
            spec.starts,
            spec.prop,
            spec.scheduler,
        )
    return index, simulate_chunk(spec, chunk, backend)


def _worker_main(
    conn: Connection,
    payload: _Payload,
    attempt: int,
    plan_data: Optional[dict[str, Any]],
    telemetry_data: Optional[dict[str, Any]] = None,
) -> None:
    """Supervised worker body: run one chunk, deliver ``("ok", tally)``.

    First order of business is shedding the parent's flag-setting signal
    handlers (inherited across ``fork``): SIGTERM back to the default
    disposition so the supervisor's ``terminate()`` actually kills a hung
    worker, SIGINT ignored so a terminal Ctrl-C (delivered group-wide)
    interrupts only the supervisor, which then winds workers down
    deliberately. Any exception is delivered as ``("error", message)``;
    a worker that dies without delivering anything (injected ``os._exit``
    or a real crash) is detected by the supervisor as EOF on the pipe.

    Telemetry follows the fault plan's delivery model: the supervisor
    ships an explicit config (same trace id) rather than the worker
    self-arming from the environment, so one campaign run is exactly one
    trace however many workers it respawns. The worker's own
    ``chunk.attempt`` span brackets the chunk's true execution time —
    pipe and spawn latency stay in the supervisor's accounting.
    """
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    faults.clear()
    if plan_data is not None:
        faults.install(FaultPlan.from_dict(plan_data))
    faults.mark_worker()
    faults.set_context(payload[0], attempt)
    telemetry.install(
        TelemetryConfig.from_dict(telemetry_data)
        if telemetry_data is not None
        else None
    )
    telemetry.set_context(chunk=payload[0], attempt=attempt)
    try:
        with telemetry.span(
            "chunk.attempt",
            chunk=payload[0],
            attempt=attempt,
            tables=len(payload[2]),
        ) as span_attrs:
            _, tally = _campaign_chunk(payload)
            span_attrs["ok"] = True
    except BaseException as exc:  # delivered, not swallowed
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ok", tally))
    conn.close()


def _kill_process(process: multiprocessing.process.BaseProcess) -> None:
    """Terminate a worker, escalating to SIGKILL if it lingers."""
    if not process.is_alive():
        process.join()
        return
    process.terminate()
    process.join(timeout=1.0)
    if process.is_alive():
        process.kill()
        process.join()


@dataclass
class _Slot:
    """One running supervised worker."""

    payload: _Payload
    attempt: int
    process: multiprocessing.process.BaseProcess
    deadline: Optional[float]


class CampaignRunner:
    """Runs scenarios against a result store, resumably and supervised.

    ``backend`` picks the execution substrate of *both* dispatch paths:
    the exact solver's dense NumPy lockstep vs packed kernel vs object
    product, and the simulation runner's NumPy lockstep kernel vs
    compiled tables vs object engines. ``"auto"`` (the default) resolves
    per scenario to the fastest backend available on this host —
    ``vector`` → ``packed`` by NumPy availability on either path (the
    one registry: :mod:`repro.verification.backends`).
    The backend is an execution detail, not workload identity — all
    backends tally every chunk byte-identically, so scenario hashes,
    chunk records and report bytes never depend on it, and a campaign
    checkpointed under one backend resumes cleanly under any other.
    ``validate`` applies to the exact-solver path only (certificate
    replay validation).

    ``policy`` governs retries, per-chunk deadlines and quarantine
    (:class:`RetryPolicy`); ``faults`` installs an explicit
    :class:`~repro.scenarios.faults.FaultPlan` for this runner (tests and
    the crash-loop harness — the ``REPRO_FAULT_PLAN`` environment
    variable reaches workers without it). Both default to off.

    ``telemetry`` arms span/counter tracing (:mod:`repro.telemetry`): a
    trace directory (``str``/``Path``; the ``REPRO_TRACE_DIR``
    environment variable is the equivalent ambient channel) gets a fresh
    trace id per :meth:`run` call, while an explicit
    :class:`~repro.telemetry.TelemetryConfig` pins the trace id (tests).
    Telemetry is observational only — scenario hashes, chunk records and
    report bytes are byte-identical armed or not, the same contract as
    ``backend``.
    """

    def __init__(
        self,
        store: ResultStore,
        backend: str = "auto",
        jobs: Optional[int] = None,
        validate: bool = False,
        policy: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        telemetry: Optional[str | Path | TelemetryConfig] = None,
    ) -> None:
        self.store = store
        self.backend = check_backend_choice(backend)
        self.jobs = resolve_jobs(jobs)
        self.validate = validate
        self.policy = policy if policy is not None else RetryPolicy()
        self.faults = faults
        self.telemetry = telemetry
        self._signal: Optional[int] = None

    def _resolve_backend(self, spec: ScenarioSpec) -> str:
        """The concrete backend this spec's chunks will execute on.

        Resolved once in the parent before any chunk is dispatched
        (workers receive the concrete name): ``auto`` picks the fastest
        substrate available for the spec's dispatch path. Asking the
        exact solver for ``vector``, or for ``vector`` without NumPy,
        fails loudly here as a usage error rather than poisoning chunks
        retry by retry.
        """
        try:
            if spec.dynamics == "highly-dynamic":
                return resolve_solver_backend(self.backend)
            return resolve_simulation_backend(self.backend)
        except VerificationError as exc:
            raise ScenarioError(str(exc)) from exc

    def _telemetry_config(
        self, spec: ScenarioSpec, backend: str
    ) -> Optional[TelemetryConfig]:
        """Resolve this run's trace config: explicit arg beats environment."""
        configured = self.telemetry
        if configured is None:
            ambient = os.environ.get(telemetry.TRACE_DIR_ENV_VAR)
            if ambient:
                configured = ambient
        if configured is None:
            return None
        context = {
            "scenario": spec.name,
            "scenario_id": spec.scenario_id,
            "backend": backend,
            "jobs": self.jobs,
        }
        if isinstance(configured, TelemetryConfig):
            return configured.with_context(
                **{**context, **dict(configured.context)}
            )
        return TelemetryConfig(trace_dir=Path(configured), context=context)

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def _checked_records(
        self, spec: ScenarioSpec, chunks: list[tuple[int, ...]]
    ) -> dict[int, dict[str, Any]]:
        """Stored records, cross-checked against the spec's own chunking."""
        records = self.store.load_records(spec)
        for index, record in records.items():
            if not 0 <= index < len(chunks):
                raise StoreCorruptionError(
                    f"store corruption: scenario {spec.scenario_id} has a "
                    f"record for chunk {index}, but the spec cuts "
                    f"{len(chunks)} chunks"
                )
            if record["digest"] != chunk_digest(chunks[index]):
                raise StoreCorruptionError(
                    f"store corruption: chunk {index} of scenario "
                    f"{spec.scenario_id} was checkpointed for different "
                    "bit patterns than the spec expands to"
                )
        return records

    def _merged_status(
        self,
        spec: ScenarioSpec,
        chunks: list[tuple[int, ...]],
        records: dict[int, dict[str, Any]],
    ) -> CampaignStatus:
        """Fold records in chunk order into a status (the report's core)."""
        total = trapped = states = 0
        explorers: list[str] = []
        failed: list[int] = []
        for index in sorted(records):
            record = records[index]
            if is_failure_record(record):
                failed.append(index)
                continue
            total += record["total"]
            trapped += record["trapped"]
            states += record["states"]
            explorers.extend(record["explorers"])
        return CampaignStatus(
            name=spec.name,
            scenario_id=spec.scenario_id,
            chunks_total=len(chunks),
            chunks_done=len(records) - len(failed),
            chunks_failed=len(failed),
            failed_chunks=tuple(failed),
            total=total,
            trapped=trapped,
            explorers=tuple(explorers),
            states_explored=states,
        )

    def status(self, spec: ScenarioSpec) -> CampaignStatus:
        """Current progress of a scenario's campaign in this store."""
        chunks = spec.chunks()
        return self._merged_status(spec, chunks, self._checked_records(spec, chunks))

    def failure_details(self, spec: ScenarioSpec) -> dict[int, dict[str, Any]]:
        """The stored failure records of quarantined chunks, by index.

        Each carries ``attempts``, ``error`` and (for records written
        since diagnostics landed) the ``diagnostics`` retry schedule —
        what ``retry-failed`` prints to explain a poisoning.
        """
        chunks = spec.chunks()
        records = self._checked_records(spec, chunks)
        return {
            index: record
            for index, record in sorted(records.items())
            if is_failure_record(record)
        }

    def status_dict(self, spec: ScenarioSpec) -> dict[str, Any]:
        """Status plus per-chunk failure diagnostics, JSON-ready."""
        chunks = spec.chunks()
        records = self._checked_records(spec, chunks)
        data = self._merged_status(spec, chunks, records).to_dict()
        failures = [
            {
                "chunk": index,
                "attempts": record["attempts"],
                "error": record["error"],
                "diagnostics": record.get("diagnostics"),
            }
            for index, record in sorted(records.items())
            if is_failure_record(record)
        ]
        if failures:
            data["failures"] = failures
        return data

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self,
        spec: ScenarioSpec,
        max_chunks: Optional[int] = None,
        include_failed: bool = False,
    ) -> CampaignRunOutcome:
        """Settle every not-yet-checkpointed chunk; report once settled.

        ``max_chunks`` bounds how many pending chunks this call attempts
        (operational lever: sliced runs, and the test harness's simulated
        interrupts). ``include_failed`` additionally re-executes chunks
        quarantined by an earlier run (the ``retry-failed`` verb) — their
        success records supersede the failure records in the store.
        Verified chunks are never re-verified.

        When telemetry is armed the whole call is one ``campaign`` span
        (measured wall-to-wall, so traces account for effectively all of
        the run's clock time); the previous process-local telemetry state
        is restored on exit, mirroring the fault-plan save/restore.
        """
        backend = self._resolve_backend(spec)
        config = self._telemetry_config(spec, backend)
        if config is None:
            return self._run(spec, max_chunks, include_failed, backend)
        previous = telemetry.active()
        telemetry.install(config)
        try:
            with telemetry.span("campaign") as span_attrs:
                outcome = self._run(spec, max_chunks, include_failed, backend)
                span_attrs["chunks_run"] = outcome.chunks_run
                span_attrs["settled"] = outcome.status.settled
            return outcome
        finally:
            telemetry.install(previous)

    def _run(
        self,
        spec: ScenarioSpec,
        max_chunks: Optional[int],
        include_failed: bool,
        backend: str,
    ) -> CampaignRunOutcome:
        self.store.prepare(spec)
        chunks = spec.chunks()
        records = self._checked_records(spec, chunks)
        pending = [
            (index, chunk)
            for index, chunk in enumerate(chunks)
            if index not in records
            or (include_failed and is_failure_record(records[index]))
        ]
        cached = len(chunks) - len(pending)
        if max_chunks is not None:
            if max_chunks < 0:
                raise ScenarioError(f"max_chunks must be >= 0, got {max_chunks}")
            pending = pending[:max_chunks]
        spec_data = spec.to_dict()
        payloads: list[_Payload] = [
            (index, spec_data, chunk, backend, self.validate)
            for index, chunk in pending
        ]
        if telemetry.armed():
            telemetry.counter("store.cache_hit", cached)
            telemetry.counter("store.cache_miss", len(pending))
        plan = self.faults if self.faults is not None else faults.active_plan()
        previous_handlers = self._install_signal_handlers()
        previous_plan = faults._STATE.plan
        if self.faults is not None:
            faults.install(self.faults)
        try:
            for index, outcome in self._execute(payloads, plan):
                if outcome[0] == "ok":
                    total, trapped, explorers, states = outcome[1]
                    record = {
                        "chunk": index,
                        "digest": chunk_digest(chunks[index]),
                        "total": total,
                        "trapped": trapped,
                        "explorers": explorers,
                        "states": states,
                    }
                else:
                    _, attempts, error, diagnostics = outcome
                    record = {
                        "chunk": index,
                        "digest": chunk_digest(chunks[index]),
                        "failed": True,
                        "attempts": attempts,
                        "error": error,
                        "diagnostics": diagnostics,
                    }
                records[index] = record
                self._append_with_retry(spec, record, plan)
        finally:
            faults.install(previous_plan)
            faults.set_context(-1, 0)
            self._restore_signal_handlers(previous_handlers)
        status = self._merged_status(spec, chunks, records)
        if status.degraded and telemetry.armed():
            telemetry.event(
                "campaign.degraded",
                failed_chunks=list(status.failed_chunks),
            )
        report_path = None
        if status.settled:
            report_path = self.store.report_path(spec)
            # Cache-hit reruns stay write-free: only (re)publish the
            # report when this call settled something or none exists.
            if payloads or not report_path.exists():
                report_path = self.store.write_report(
                    spec, self._report_text(spec, status)
                )
        return CampaignRunOutcome(
            status=status,
            chunks_run=len(payloads),
            chunks_cached=cached,
            report_path=report_path,
        )

    def retry_failed(
        self, spec: ScenarioSpec, max_chunks: Optional[int] = None
    ) -> CampaignRunOutcome:
        """Re-execute exactly the quarantined chunks of a degraded campaign."""
        return self.run(spec, max_chunks=max_chunks, include_failed=True)

    def fsck(self, spec: ScenarioSpec) -> RecoveryReport:
        """Salvage this scenario's checkpoint log (see ``ResultStore.recover``).

        Passes the spec's own chunk digests down, so records for the
        wrong chunking are dropped along with byte-level damage; after a
        successful fsck the strict read path (and hence ``run``) works
        again, re-executing exactly the lost chunks.
        """
        chunks = spec.chunks()
        expected = {
            index: chunk_digest(chunk) for index, chunk in enumerate(chunks)
        }
        return self.store.recover(spec, expected)

    # ------------------------------------------------------------------
    # Signal safety
    # ------------------------------------------------------------------
    def _install_signal_handlers(self) -> Optional[dict[int, Any]]:
        """Trade SIGINT/SIGTERM for a flag checked at chunk boundaries.

        The default SIGINT disposition raises ``KeyboardInterrupt`` at an
        arbitrary bytecode — possibly mid-append, tearing a non-final
        record. The flag handler defers the stop to the next boundary,
        *after* the in-flight record is fsynced. Only possible on the
        main thread; elsewhere the runner keeps the ambient dispositions.
        """
        self._signal = None
        if threading.current_thread() is not threading.main_thread():
            return None
        previous: dict[int, Any] = {}
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous[signum] = signal.signal(signum, self._on_signal)
        return previous

    def _restore_signal_handlers(
        self, previous: Optional[dict[int, Any]]
    ) -> None:
        if previous is None:
            return
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    def _on_signal(self, signum: int, frame: Any) -> None:
        self._signal = signum

    def _check_interrupt(self) -> None:
        if self._signal is None:
            return
        name = signal.Signals(self._signal).name
        raise CampaignInterruptedError(
            f"campaign interrupted by {name}; every checkpointed chunk is "
            "fsynced — resume with `campaign run`"
        )

    # ------------------------------------------------------------------
    # Executors
    # ------------------------------------------------------------------
    def _execute(
        self, payloads: list[_Payload], plan: Optional[FaultPlan]
    ) -> Iterable[tuple[int, tuple]]:
        """Settle chunk payloads, in-process or supervised.

        Results stream out as chunks settle (``("ok", tally)`` or
        ``("failed", attempts, error)``) so every record is checkpointed
        the moment it lands; an interrupt preserves the fastest chunks
        regardless of their index, and merged results never depend on
        arrival order.
        """
        if self.jobs <= 1 or len(payloads) <= 1:
            yield from self._execute_inprocess(payloads, plan)
            return
        yield from self._execute_supervised(payloads, plan)

    def _execute_inprocess(
        self, payloads: list[_Payload], plan: Optional[FaultPlan]
    ) -> Iterator[tuple[int, tuple]]:
        """Serial executor with the same retry/quarantine semantics.

        No process boundary, so no preemption: ``chunk_timeout`` is not
        enforced here, and only *injected* crashes
        (:class:`WorkerCrashError`) are retryable — a genuine exception
        from the chunk runner propagates, exactly as before.
        """
        policy = self.policy
        seed = plan.seed if plan is not None else 0
        for payload in payloads:
            self._check_interrupt()
            index = payload[0]
            error = ""
            attempt_log: list[dict[str, Any]] = []
            for attempt in range(1, policy.max_attempts + 1):
                faults.set_context(index, attempt)
                telemetry.set_context(chunk=index, attempt=attempt)
                crash: Optional[WorkerCrashError] = None
                tally: tuple = ()
                try:
                    with telemetry.span(
                        "chunk.attempt",
                        chunk=index,
                        attempt=attempt,
                        tables=len(payload[2]),
                    ) as span_attrs:
                        try:
                            _, tally = _campaign_chunk(payload)
                            span_attrs["ok"] = True
                        except WorkerCrashError as exc:
                            span_attrs["ok"] = False
                            span_attrs["error"] = type(exc).__name__
                            crash = exc
                finally:
                    faults.set_context(-1, 0)
                    telemetry.set_context(chunk=None, attempt=None)
                if crash is None:
                    yield index, ("ok", tally)
                    break
                error = f"{type(crash).__name__}: {crash}"
                delay: Optional[float] = None
                if attempt < policy.max_attempts:
                    delay = faults.backoff_delay(
                        policy.backoff_base,
                        policy.backoff_cap,
                        attempt,
                        f"chunk{index}",
                        seed,
                    )
                attempt_log.append(
                    {
                        "attempt": attempt,
                        "error": error,
                        "delay": delay,
                        "deadline": None,  # no preemption in-process
                    }
                )
                if delay is not None:
                    telemetry.event(
                        "chunk.retry",
                        chunk=index,
                        next_attempt=attempt + 1,
                        delay=delay,
                    )
                    time.sleep(delay)
            else:
                if not policy.quarantine:
                    raise ChunkPoisonedError(
                        f"chunk {index} failed all {policy.max_attempts} "
                        f"attempts; last error: {error}"
                    )
                telemetry.event(
                    "chunk.quarantine", chunk=index, attempts=policy.max_attempts
                )
                yield index, (
                    "failed",
                    policy.max_attempts,
                    error,
                    self._failure_diagnostics(attempt_log),
                )

    def _execute_supervised(
        self, payloads: list[_Payload], plan: Optional[FaultPlan]
    ) -> Iterator[tuple[int, tuple]]:
        """Process-per-chunk supervisor: deadlines, respawn, quarantine.

        A hand-rolled supervisor rather than ``multiprocessing.Pool``
        because a pool treats a dead worker as a reason to hang; here a
        worker death is an *event* — EOF on its result pipe — answered by
        a backed-off respawn of that attempt's chunk. Deadlines are
        enforced by the same ``wait()`` loop: an overdue worker is
        killed and its chunk retried like a crash.
        """
        policy = self.policy
        seed = plan.seed if plan is not None else 0
        ctx = multiprocessing.get_context()
        plan_data = plan.to_dict() if plan is not None else None
        trace = telemetry.active()
        telemetry_data = trace.to_dict() if trace is not None else None
        queue: deque[tuple[_Payload, int]] = deque(
            (payload, 1) for payload in payloads
        )
        retries: list[tuple[float, _Payload, int]] = []
        running: dict[Connection, _Slot] = {}
        history: dict[int, list[dict[str, Any]]] = {}
        try:
            while queue or retries or running:
                self._check_interrupt()
                now = time.monotonic()
                if retries:
                    due = [entry for entry in retries if entry[0] <= now]
                    if due:
                        retries = [e for e in retries if e[0] > now]
                        # Retries jump the queue: an old chunk's tail
                        # latency should not grow behind fresh work.
                        for _, payload, attempt in due:
                            queue.appendleft((payload, attempt))
                while queue and len(running) < self.jobs:
                    payload, attempt = queue.popleft()
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    process = ctx.Process(
                        target=_worker_main,
                        args=(child_conn, payload, attempt, plan_data, telemetry_data),
                    )
                    process.start()
                    child_conn.close()
                    telemetry.event(
                        "worker.spawn",
                        chunk=payload[0],
                        attempt=attempt,
                        worker_pid=process.pid,
                    )
                    deadline = (
                        time.monotonic() + policy.chunk_timeout
                        if policy.chunk_timeout is not None
                        else None
                    )
                    running[parent_conn] = _Slot(payload, attempt, process, deadline)
                ready = (
                    connection_wait(
                        list(running), timeout=_SUPERVISOR_TICK_SECONDS
                    )
                    if running
                    else []
                )
                if not running:
                    # Everything is backing off; sleep one tick.
                    time.sleep(
                        min(
                            _SUPERVISOR_TICK_SECONDS,
                            max(0.0, min(e[0] for e in retries) - now),
                        )
                    )
                for conn in ready:
                    slot = running.pop(conn)  # type: ignore[arg-type]
                    try:
                        message = conn.recv()  # type: ignore[union-attr]
                    except (EOFError, OSError):
                        message = None
                    conn.close()  # type: ignore[union-attr]
                    slot.process.join()
                    if message is not None and message[0] == "ok":
                        yield slot.payload[0], ("ok", message[1])
                        continue
                    if message is not None:
                        error = message[1]
                    else:
                        error = (
                            f"WorkerCrashError: worker for chunk "
                            f"{slot.payload[0]} died with exit code "
                            f"{slot.process.exitcode} before delivering a "
                            f"tally (attempt {slot.attempt})"
                        )
                        telemetry.event(
                            "worker.crash",
                            chunk=slot.payload[0],
                            attempt=slot.attempt,
                            exitcode=slot.process.exitcode,
                        )
                    settled = self._settle_failure(
                        slot, error, retries, seed, history
                    )
                    if settled is not None:
                        yield settled
                now = time.monotonic()
                overdue = [
                    conn
                    for conn, slot in running.items()
                    if slot.deadline is not None and slot.deadline <= now
                ]
                for conn in overdue:
                    slot = running.pop(conn)
                    _kill_process(slot.process)
                    conn.close()
                    error = (
                        f"ChunkTimeoutError: chunk {slot.payload[0]} exceeded "
                        f"the {policy.chunk_timeout:g}s per-chunk deadline "
                        f"(attempt {slot.attempt})"
                    )
                    telemetry.event(
                        "chunk.timeout",
                        chunk=slot.payload[0],
                        attempt=slot.attempt,
                        deadline=policy.chunk_timeout,
                    )
                    settled = self._settle_failure(
                        slot, error, retries, seed, history
                    )
                    if settled is not None:
                        yield settled
        finally:
            for conn, slot in running.items():
                _kill_process(slot.process)
                conn.close()

    def _settle_failure(
        self,
        slot: _Slot,
        error: str,
        retries: list[tuple[float, _Payload, int]],
        seed: int,
        history: dict[int, list[dict[str, Any]]],
    ) -> Optional[tuple[int, tuple]]:
        """Retry a failed attempt with backoff, or settle the chunk.

        Returns ``(index, ("failed", attempts, error, diagnostics))``
        once the retry budget is exhausted and quarantine is on; ``None``
        while a retry is still owed (it was pushed onto ``retries``).
        Every failed attempt is logged to ``history`` — attempt number,
        error, computed backoff delay, per-attempt deadline — which
        becomes the quarantined record's ``diagnostics``, so fsck and
        ``retry-failed`` can explain the poisoning without re-running it.
        """
        policy = self.policy
        index = slot.payload[0]
        entry = {
            "attempt": slot.attempt,
            "error": error,
            "delay": None,
            "deadline": policy.chunk_timeout,
        }
        history.setdefault(index, []).append(entry)
        if slot.attempt < policy.max_attempts:
            delay = faults.backoff_delay(
                policy.backoff_base,
                policy.backoff_cap,
                slot.attempt,
                f"chunk{index}",
                seed,
            )
            entry["delay"] = delay
            telemetry.event(
                "chunk.retry",
                chunk=index,
                next_attempt=slot.attempt + 1,
                delay=delay,
            )
            retries.append((time.monotonic() + delay, slot.payload, slot.attempt + 1))
            return None
        if not policy.quarantine:
            raise ChunkPoisonedError(
                f"chunk {index} failed all {policy.max_attempts} attempts; "
                f"last error: {error}"
            )
        telemetry.event(
            "chunk.quarantine", chunk=index, attempts=policy.max_attempts
        )
        return index, (
            "failed",
            policy.max_attempts,
            error,
            self._failure_diagnostics(history[index]),
        )

    def _failure_diagnostics(
        self, attempt_log: list[dict[str, Any]]
    ) -> dict[str, Any]:
        """The retry schedule a quarantined chunk actually exhausted.

        Deterministic given the spec, policy and fault seed —
        ``backoff_delay`` is a pure function — so quarantine records stay
        reproducible; stored under the failure record's ``diagnostics``
        key (the strict reader accepts records with or without it, so
        pre-existing logs still load).
        """
        policy = self.policy
        return {
            "attempts": attempt_log,
            "policy": {
                "max_attempts": policy.max_attempts,
                "backoff_base": policy.backoff_base,
                "backoff_cap": policy.backoff_cap,
                "chunk_timeout": policy.chunk_timeout,
            },
        }

    def _append_with_retry(
        self,
        spec: ScenarioSpec,
        record: dict[str, Any],
        plan: Optional[FaultPlan],
    ) -> None:
        """Checkpoint one record, retrying failed fsyncs with backoff.

        After a failed fsync the line's durability is unknown, so the
        append simply runs again: if the first write did land, the rerun
        produces an identical duplicate line, which the strict reader
        dedups for free. Exhausting the budget raises
        :class:`StoreCorruptionError` — the store cannot prove the work.
        """
        policy = self.policy
        seed = plan.seed if plan is not None else 0
        last: Optional[OSError] = None
        for attempt in range(1, policy.max_attempts + 1):
            try:
                self.store.append_record(spec, record)
                return
            except OSError as exc:
                last = exc
                if attempt < policy.max_attempts:
                    time.sleep(
                        faults.backoff_delay(
                            policy.backoff_base,
                            policy.backoff_cap,
                            attempt,
                            f"append{record['chunk']}",
                            seed,
                        )
                    )
        raise StoreCorruptionError(
            f"could not durably checkpoint chunk {record['chunk']} after "
            f"{policy.max_attempts} attempts: {last}"
        )

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def report_dict(
        self, spec: ScenarioSpec, allow_degraded: bool = False
    ) -> dict[str, Any]:
        """The final report as a dict; raises until the campaign settles.

        A degraded campaign's report is withheld behind
        ``allow_degraded`` (:class:`CampaignDegradedError` otherwise), so
        partial results are always an explicit, visible choice.
        """
        return self._report_dict(spec, self._settled_status(spec, allow_degraded))

    def report_text(self, spec: ScenarioSpec, allow_degraded: bool = False) -> str:
        """The final report's exact bytes (as text); raises if unsettled."""
        return self._report_text(spec, self._settled_status(spec, allow_degraded))

    def _settled_status(
        self, spec: ScenarioSpec, allow_degraded: bool = False
    ) -> CampaignStatus:
        """Status of a campaign required to be settled (reporting gate)."""
        status = self.status(spec)
        if not status.settled:
            raise CampaignIncompleteError(
                f"campaign {spec.name!r} is incomplete "
                f"({status.chunks_done}/{status.chunks_total} chunks); "
                "run it to completion before reporting"
            )
        if status.degraded and not allow_degraded:
            raise CampaignDegradedError(
                f"campaign {spec.name!r} is degraded: chunks "
                f"{list(status.failed_chunks)} are quarantined; re-execute "
                "them with `campaign retry-failed` or request the partial "
                "report explicitly"
            )
        return status

    def _report_dict(
        self, spec: ScenarioSpec, status: CampaignStatus
    ) -> dict[str, Any]:
        """Report content: spec + merged tallies, nothing run-dependent.

        No timestamps, worker counts or backend names — the report must be
        a pure function of (spec, settled records) so interrupted-and-
        resumed and uninterrupted campaigns emit identical bytes. The
        degraded keys appear only when quarantined chunks exist, keeping
        clean-run report bytes independent of the fault machinery.
        """
        data = {
            "format": "campaign-report",
            "version": CAMPAIGN_REPORT_VERSION,
            "scenario_id": spec.scenario_id,
            "scenario": spec.to_dict(),
            "chunks": status.chunks_total,
            "total": status.total,
            "trapped": status.trapped,
            "explorers": list(status.explorers),
            "states_explored": status.states_explored,
            "all_trapped": status.all_trapped,
        }
        if status.chunks_failed:
            data["degraded"] = True
            data["failed_chunks"] = list(status.failed_chunks)
        return data

    def _report_text(self, spec: ScenarioSpec, status: CampaignStatus) -> str:
        return (
            json.dumps(self._report_dict(spec, status), indent=2, sort_keys=True)
            + "\n"
        )


__all__ = [
    "CAMPAIGN_REPORT_VERSION",
    "CampaignRunner",
    "CampaignRunOutcome",
    "CampaignStatus",
    "RetryPolicy",
]
