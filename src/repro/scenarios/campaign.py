"""The persistent campaign runner: resumable sweeps over scenario specs.

A *campaign* is one scenario executed to completion, checkpointed chunk by
chunk in a :class:`~repro.scenarios.store.ResultStore`. Every registered
dynamics family is executable: ``"highly-dynamic"`` scenarios run on the
exact game solver (:func:`~repro.verification.sweeps.sweep_chunk`), and
schedule-family scenarios run on the simulation chunk runner
(:func:`~repro.scenarios.simulate.simulate_chunk`) against their pinned
schedule parameterization. Both paths produce the same record schema and
both offer a packed fast backend and an object oracle backend with
byte-identical tallies, so the store, resume, dedup and reporting
machinery below is shared — and backend-agnostic. The contract:

* **Deterministic work units.** The scenario expands to a fixed pattern
  stream cut into fixed-size chunks (never dependent on worker count), and
  the chunk runner of either path tallies each chunk identically on any
  backend, worker or host.
* **Interrupt safety.** A chunk checkpoints only once fully verified;
  killing a campaign loses at most the chunks in flight. Resuming verifies
  exactly the missing chunks and produces a final report *byte-identical*
  to an uninterrupted run's — the report is a pure function of the spec
  and the per-chunk tallies, merged in chunk order.
* **Dedup.** Re-running a completed campaign is a cache hit: zero chunks
  re-verified, the same report bytes re-emitted.

The runner parallelizes *across* chunks with a process pool (``jobs``),
writing each record as its chunk lands; record order on disk is
scheduling-dependent, merged order never is.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Optional

from repro.errors import CampaignIncompleteError, ScenarioError
from repro.scenarios.simulate import simulate_chunk
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import ResultStore, chunk_digest
from repro.verification.product import check_backend
from repro.verification.sweeps import resolve_jobs, sweep_chunk

CAMPAIGN_REPORT_VERSION = 1

_Payload = tuple[int, dict[str, Any], tuple[int, ...], str, bool]
"""(chunk index, spec encoding, bit patterns, backend, validate).

The spec rides along as its :meth:`ScenarioSpec.to_dict` form — plainly
picklable, and the worker re-validates it on decode, so a chunk can never
execute against a spec its own construction-time gate would refuse.
``backend`` selects the execution substrate on *both* dispatch paths
(packed kernel vs object oracle for the exact solver, compiled tables vs
object engines for the simulation runner); it is hash-neutral — never
part of the spec payload, the chunk records or the report bytes.
"""


@dataclass(frozen=True)
class CampaignStatus:
    """Progress and partial tallies of one campaign."""

    name: str
    scenario_id: str
    chunks_total: int
    chunks_done: int
    total: int
    trapped: int
    explorers: tuple[str, ...]
    states_explored: int

    @property
    def complete(self) -> bool:
        """Whether every chunk has checkpointed."""
        return self.chunks_done == self.chunks_total

    @property
    def all_trapped(self) -> bool:
        """Whether the campaign *completed* with every member trapped.

        Deliberately false for partial campaigns, however unanimous the
        tallies so far: the theorems' claim is about the whole class, and
        a sliced or interrupted run must not read as a discharge.
        """
        return self.complete and self.trapped == self.total and not self.explorers

    def summary(self) -> str:
        """One-line human summary for the CLI."""
        state = "complete" if self.complete else "in progress"
        return (
            f"{self.name} [{self.scenario_id}] {state}: "
            f"{self.chunks_done}/{self.chunks_total} chunks, "
            f"{self.trapped}/{self.total} trapped"
            + (f", {len(self.explorers)} explorers" if self.explorers else "")
        )


@dataclass(frozen=True)
class CampaignRunOutcome:
    """What one :meth:`CampaignRunner.run` call did."""

    status: CampaignStatus
    chunks_run: int
    chunks_cached: int
    report_path: Optional[Path]

    def summary(self) -> str:
        """One-line human summary for the CLI."""
        line = (
            f"{self.status.summary()} — ran {self.chunks_run} chunks, "
            f"{self.chunks_cached} cached"
        )
        if self.report_path is not None:
            line += f"; report: {self.report_path}"
        return line


def _campaign_chunk(payload: _Payload) -> tuple[int, tuple]:
    """Run one indexed chunk (worker body; top-level to pickle).

    Dispatches on the spec's dynamics: the exact solver for the
    highly-dynamic adversary, the simulation runner for schedule
    families. Both return the same tally shape.
    """
    index, spec_data, chunk, backend, validate = payload
    spec = ScenarioSpec.from_dict(spec_data)
    if spec.dynamics == "highly-dynamic":
        return index, sweep_chunk(
            spec.robots.family,
            spec.n,
            chunk,
            backend,
            validate,
            spec.starts,
            spec.prop,
            spec.scheduler,
        )
    return index, simulate_chunk(spec, chunk, backend)


class CampaignRunner:
    """Runs scenarios against a result store, resumably.

    ``backend`` picks the execution substrate of *both* dispatch paths:
    the exact solver's packed kernel vs object product, and the
    simulation runner's compiled tables vs object engines
    (``"packed"``, the default, is the fast path on each). The backend
    is an execution detail, not workload identity — both backends tally
    every chunk byte-identically, so scenario hashes, chunk records and
    report bytes never depend on it, and a campaign checkpointed under
    one backend resumes cleanly under the other. ``validate`` applies to
    the exact-solver path only (certificate replay validation).
    """

    def __init__(
        self,
        store: ResultStore,
        backend: str = "packed",
        jobs: Optional[int] = None,
        validate: bool = False,
    ) -> None:
        self.store = store
        self.backend = check_backend(backend)
        self.jobs = resolve_jobs(jobs)
        self.validate = validate

    # ------------------------------------------------------------------
    # Status
    # ------------------------------------------------------------------
    def _checked_records(
        self, spec: ScenarioSpec, chunks: list[tuple[int, ...]]
    ) -> dict[int, dict[str, Any]]:
        """Stored records, cross-checked against the spec's own chunking."""
        records = self.store.load_records(spec)
        for index, record in records.items():
            if not 0 <= index < len(chunks):
                raise ScenarioError(
                    f"store corruption: scenario {spec.scenario_id} has a "
                    f"record for chunk {index}, but the spec cuts "
                    f"{len(chunks)} chunks"
                )
            if record["digest"] != chunk_digest(chunks[index]):
                raise ScenarioError(
                    f"store corruption: chunk {index} of scenario "
                    f"{spec.scenario_id} was checkpointed for different "
                    "bit patterns than the spec expands to"
                )
        return records

    def _merged_status(
        self,
        spec: ScenarioSpec,
        chunks: list[tuple[int, ...]],
        records: dict[int, dict[str, Any]],
    ) -> CampaignStatus:
        """Fold records in chunk order into a status (the report's core)."""
        total = trapped = states = 0
        explorers: list[str] = []
        for index in sorted(records):
            record = records[index]
            total += record["total"]
            trapped += record["trapped"]
            states += record["states"]
            explorers.extend(record["explorers"])
        return CampaignStatus(
            name=spec.name,
            scenario_id=spec.scenario_id,
            chunks_total=len(chunks),
            chunks_done=len(records),
            total=total,
            trapped=trapped,
            explorers=tuple(explorers),
            states_explored=states,
        )

    def status(self, spec: ScenarioSpec) -> CampaignStatus:
        """Current progress of a scenario's campaign in this store."""
        chunks = spec.chunks()
        return self._merged_status(spec, chunks, self._checked_records(spec, chunks))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(
        self, spec: ScenarioSpec, max_chunks: Optional[int] = None
    ) -> CampaignRunOutcome:
        """Verify every not-yet-checkpointed chunk; report on completion.

        ``max_chunks`` bounds how many pending chunks this call verifies
        (operational lever: sliced runs, and the test harness's simulated
        interrupts). Completed chunks are never re-verified.
        """
        self.store.prepare(spec)
        chunks = spec.chunks()
        records = self._checked_records(spec, chunks)
        pending = [
            (index, chunk)
            for index, chunk in enumerate(chunks)
            if index not in records
        ]
        cached = len(chunks) - len(pending)
        if max_chunks is not None:
            if max_chunks < 0:
                raise ScenarioError(f"max_chunks must be >= 0, got {max_chunks}")
            pending = pending[:max_chunks]
        spec_data = spec.to_dict()
        payloads: list[_Payload] = [
            (index, spec_data, chunk, self.backend, self.validate)
            for index, chunk in pending
        ]
        for index, outcome in self._execute(payloads):
            total, trapped, explorers, states = outcome
            records[index] = record = {
                "chunk": index,
                "digest": chunk_digest(chunks[index]),
                "total": total,
                "trapped": trapped,
                "explorers": explorers,
                "states": states,
            }
            self.store.append_record(spec, record)
        status = self._merged_status(spec, chunks, records)
        report_path = None
        if status.complete:
            report_path = self.store.report_path(spec)
            # Cache-hit reruns stay write-free: only (re)publish the
            # report when this call verified something or none exists.
            if payloads or not report_path.exists():
                report_path = self.store.write_report(
                    spec, self._report_text(spec, status)
                )
        return CampaignRunOutcome(
            status=status,
            chunks_run=len(payloads),
            chunks_cached=cached,
            report_path=report_path,
        )

    def _execute(
        self, payloads: list[_Payload]
    ) -> Iterable[tuple[int, tuple]]:
        """Run chunk payloads, in-process or on a pool.

        ``imap_unordered`` on purpose: every result is checkpointed the
        moment it lands, so an interrupt preserves the fastest chunks
        regardless of their index; merged results never depend on arrival
        order.
        """
        if self.jobs <= 1 or len(payloads) <= 1:
            for payload in payloads:
                yield _campaign_chunk(payload)
            return
        with multiprocessing.get_context().Pool(processes=self.jobs) as pool:
            yield from pool.imap_unordered(_campaign_chunk, payloads)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------
    def report_dict(self, spec: ScenarioSpec) -> dict[str, Any]:
        """The final report as a dict; raises until the campaign completes."""
        return self._report_dict(spec, self._complete_status(spec))

    def report_text(self, spec: ScenarioSpec) -> str:
        """The final report's exact bytes (as text); raises if incomplete."""
        return self._report_text(spec, self._complete_status(spec))

    def _complete_status(self, spec: ScenarioSpec) -> CampaignStatus:
        """Status of a campaign required to be complete (reporting gate)."""
        status = self.status(spec)
        if not status.complete:
            raise CampaignIncompleteError(
                f"campaign {spec.name!r} is incomplete "
                f"({status.chunks_done}/{status.chunks_total} chunks); "
                "run it to completion before reporting"
            )
        return status

    def _report_dict(
        self, spec: ScenarioSpec, status: CampaignStatus
    ) -> dict[str, Any]:
        """Report content: spec + merged tallies, nothing run-dependent.

        No timestamps, worker counts or backend names — the report must be
        a pure function of (spec, verified tallies) so interrupted-and-
        resumed and uninterrupted campaigns emit identical bytes.
        """
        return {
            "format": "campaign-report",
            "version": CAMPAIGN_REPORT_VERSION,
            "scenario_id": spec.scenario_id,
            "scenario": spec.to_dict(),
            "chunks": status.chunks_total,
            "total": status.total,
            "trapped": status.trapped,
            "explorers": list(status.explorers),
            "states_explored": status.states_explored,
            "all_trapped": status.all_trapped,
        }

    def _report_text(self, spec: ScenarioSpec, status: CampaignStatus) -> str:
        return (
            json.dumps(self._report_dict(spec, status), indent=2, sort_keys=True)
            + "\n"
        )


__all__ = [
    "CAMPAIGN_REPORT_VERSION",
    "CampaignRunner",
    "CampaignRunOutcome",
    "CampaignStatus",
]
