"""Scenario registry and persistent campaign runner.

This subpackage turns the fast verification kernel into a *service*: a
workload is a declarative, content-hashed :class:`ScenarioSpec`
(:mod:`~repro.scenarios.spec`); named workload families live in a
registry (:mod:`~repro.scenarios.registry`); and a campaign executes a
scenario chunk-by-chunk against an append-only result store with
checkpointing, resume and dedup (:mod:`~repro.scenarios.store`,
:mod:`~repro.scenarios.campaign`).

The CLI surface is ``repro-rings campaign list|run|status|report``; the
same machinery is importable::

    from repro.scenarios import CampaignRunner, ResultStore, get_scenario

    runner = CampaignRunner(ResultStore("campaigns"))
    outcome = runner.run(get_scenario("thm51-single-n3"))
    assert outcome.status.all_trapped
"""

from repro.scenarios.spec import (
    DYNAMICS_FAMILIES,
    EXHAUSTIVE_LIMIT,
    SCENARIO_FORMAT_VERSION,
    RobotClassSpec,
    ScenarioSpec,
)
from repro.scenarios.registry import (
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
    smallest_scenario,
)
from repro.scenarios.store import ResultStore, chunk_digest
from repro.scenarios.campaign import (
    CampaignRunner,
    CampaignRunOutcome,
    CampaignStatus,
)

__all__ = [
    "DYNAMICS_FAMILIES",
    "EXHAUSTIVE_LIMIT",
    "SCENARIO_FORMAT_VERSION",
    "RobotClassSpec",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "smallest_scenario",
    "ResultStore",
    "chunk_digest",
    "CampaignRunner",
    "CampaignRunOutcome",
    "CampaignStatus",
]
