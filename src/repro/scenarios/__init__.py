"""Scenario registry and persistent campaign runner.

This subpackage turns the fast verification kernel *and* the simulation
engines into a service: a workload is a declarative, content-hashed
:class:`ScenarioSpec` (:mod:`~repro.scenarios.spec`); named workload
families live in a registry (:mod:`~repro.scenarios.registry`); and a
campaign executes a scenario chunk-by-chunk against an append-only
result store with checkpointing, resume and dedup
(:mod:`~repro.scenarios.store`, :mod:`~repro.scenarios.campaign`).
``highly-dynamic`` scenarios are solved exactly by the game solver;
schedule-family scenarios pin a concrete evolving graph
(:mod:`~repro.scenarios.dynamics`) and are executed by bounded-horizon
simulation (:mod:`~repro.scenarios.simulate`) on the same store. Both
paths run on a packed fast backend (the compiled-tables core of
:mod:`repro.verification.compiled`) or the object oracle, with
byte-identical tallies either way.

Campaigns are *crash-resilient*: chunks run under a supervisor with
per-chunk deadlines, dead-worker respawn, backed-off retries and
poisoned-chunk quarantine (:class:`RetryPolicy`); a corrupt checkpoint
log is salvageable (:meth:`ResultStore.recover` — ``campaign fsck``);
and the whole layer is exercised by a deterministic fault injector
(:mod:`~repro.scenarios.faults`). See ``docs/robustness.md``.

The CLI surface is
``repro-rings campaign list|run|status|report|fsck|retry-failed``; the
same machinery is importable::

    from repro.scenarios import CampaignRunner, ResultStore, get_scenario

    runner = CampaignRunner(ResultStore("campaigns"))
    outcome = runner.run(get_scenario("thm51-single-n3"))
    assert outcome.status.all_trapped
"""

from repro.scenarios.dynamics import (
    DEFAULT_HORIZON,
    RANDOMIZED_FAMILIES,
    SCHEDULE_PARAMS,
    build_schedule,
    schedule_masks,
    validate_dynamics,
)
from repro.scenarios.spec import (
    DYNAMICS_FAMILIES,
    EXHAUSTIVE_LIMIT,
    SCENARIO_FORMAT_VERSION,
    RobotClassSpec,
    ScenarioSpec,
)
from repro.scenarios.simulate import simulate_chunk, simulation_placements
from repro.scenarios.registry import (
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
    smallest_scenario,
)
from repro.scenarios.faults import ENV_VAR as FAULT_PLAN_ENV_VAR
from repro.scenarios.faults import KILL_EXIT_CODE, FaultPlan
from repro.scenarios.store import (
    RecoveryReport,
    ResultStore,
    chunk_digest,
    is_failure_record,
)
from repro.scenarios.campaign import (
    CampaignRunner,
    CampaignRunOutcome,
    CampaignStatus,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_HORIZON",
    "DYNAMICS_FAMILIES",
    "EXHAUSTIVE_LIMIT",
    "RANDOMIZED_FAMILIES",
    "SCENARIO_FORMAT_VERSION",
    "SCHEDULE_PARAMS",
    "build_schedule",
    "schedule_masks",
    "simulate_chunk",
    "simulation_placements",
    "validate_dynamics",
    "RobotClassSpec",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "iter_scenarios",
    "smallest_scenario",
    "FAULT_PLAN_ENV_VAR",
    "KILL_EXIT_CODE",
    "FaultPlan",
    "RecoveryReport",
    "ResultStore",
    "chunk_digest",
    "is_failure_record",
    "CampaignRunner",
    "CampaignRunOutcome",
    "CampaignStatus",
    "RetryPolicy",
]
