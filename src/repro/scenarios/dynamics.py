"""Schedule-dynamics parameterization: family + params + seed as data.

A scenario whose ``dynamics`` is not ``"highly-dynamic"`` names one of the
oblivious schedule families of :data:`repro.graph.schedules
.SCHEDULE_FAMILIES` — and, since schedules take constructor parameters, a
spec must pin those parameters to be a *concrete* workload rather than a
family-shaped wish. This module is the bridge between the declarative
side (frozen, hash-stable, JSON-clean parameter payloads on a
:class:`~repro.scenarios.spec.ScenarioSpec`) and the executable side (a
live :class:`~repro.graph.evolving.EvolvingGraph` the simulation chunk
runner drives):

* :func:`canonical_params` — normalize a parameter mapping into its
  canonical JSON string (sorted keys, minimal separators, string keys),
  the form stored on the frozen spec so equality, hashing and the
  scenario content hash are all byte-level questions;
* :func:`params_dict` — the inverse (canonical string → plain dict);
* :func:`validate_dynamics` — the construction-time gate: unknown
  parameters, missing required parameters, a missing seed on a
  randomized family, or a seed on a deterministic one all fail *loudly,
  with the family name*, when the spec is built — never mid-campaign;
* :func:`build_schedule` — instantiate the matching schedule class on a
  concrete footprint (randomized families get their explicit seed);
* :func:`schedule_masks` — precompile a schedule's bounded horizon into
  a flat edge-bitmask array, the form the packed simulation backend
  (:mod:`repro.scenarios.simulate` on
  :class:`~repro.verification.compiled.CompiledTables`) consumes.

Randomized families (:data:`RANDOMIZED_FAMILIES`) derive every draw from
``(seed, t)`` or from a seed-initialized stream, so a chunk worker that
rebuilds the schedule from the spec reproduces the *identical* evolving
graph — the invariant that makes simulation campaigns deterministic
across worker counts, interrupts and hosts.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Optional

from repro.errors import ReproError, ScenarioError
from repro.graph.evolving import EvolvingGraph
from repro.graph.schedules import SCHEDULE_FAMILIES
from repro.graph.topology import RingTopology

#: Default bounded horizon (rounds simulated per table run) for scenarios
#: that do not pin one explicitly. Stored concretely in the payload, so a
#: later change of this default never re-hashes existing specs.
DEFAULT_HORIZON = 96


@dataclass(frozen=True)
class FamilySchema:
    """Accepted parameterization of one schedule family."""

    required: tuple[str, ...]
    optional: tuple[str, ...]
    randomized: bool

    @property
    def accepted(self) -> tuple[str, ...]:
        """All parameter names the family accepts."""
        return self.required + self.optional


#: Family name → accepted parameters. Parameter names match the schedule
#: constructors' keyword arguments one-to-one (``seed`` is carried by the
#: spec's ``dynamics_seed`` field, not by the params mapping).
SCHEDULE_PARAMS: Mapping[str, FamilySchema] = {
    "static": FamilySchema((), ("present",), False),
    "eventually-missing": FamilySchema(
        ("edge",), ("vanish_time", "flicker_period"), False
    ),
    "intermittent": FamilySchema(("edge", "period", "duty"), (), False),
    "periodic": FamilySchema(("patterns",), (), False),
    "bernoulli": FamilySchema(("p",), (), True),
    "markov": FamilySchema(("p_off", "p_on"), (), True),
    "t-interval": FamilySchema(("T",), ("allow_full",), True),
    "at-most-one-absent": FamilySchema((), ("min_hold", "max_hold"), True),
}

RANDOMIZED_FAMILIES = tuple(
    sorted(name for name, schema in SCHEDULE_PARAMS.items() if schema.randomized)
)
"""Schedule families that require an explicit ``dynamics_seed``."""


def _jsonify(value: Any) -> Any:
    """Coerce a parameter value into JSON-clean plain data.

    Mapping keys become strings (as JSON forces anyway), sequences become
    lists, and scalars must already be JSON scalars — so a mapping built
    in code (``{0: [True, False]}``) and its JSON round trip
    (``{"0": [true, false]}``) canonicalize identically.
    """
    if isinstance(value, Mapping):
        return {str(key): _jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, frozenset | set):
        return sorted(_jsonify(item) for item in value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ScenarioError(
        f"dynamics parameter value {value!r} is not JSON-representable"
    )


def canonical_params(params: Any) -> str:
    """The canonical JSON string of a dynamics parameter mapping.

    Accepts a mapping, an already-canonical JSON string, or ``None``
    (no parameters, canonicalized to ``"{}"``). The result is the exact
    byte form stored on the frozen spec: sorted keys, minimal separators,
    string keys throughout — equal workloads produce equal strings.
    """
    if params is None:
        data: Any = {}
    elif isinstance(params, str):
        try:
            data = json.loads(params)
        except json.JSONDecodeError as exc:
            raise ScenarioError(
                f"dynamics_params string is not valid JSON: {exc}"
            ) from exc
    else:
        data = params
    if not isinstance(data, Mapping):
        raise ScenarioError(
            f"dynamics_params must be a mapping of parameter names, "
            f"got {type(data).__name__}"
        )
    return json.dumps(_jsonify(data), sort_keys=True, separators=(",", ":"))


def params_dict(frozen: Optional[str]) -> dict[str, Any]:
    """Decode a canonical parameter string back into a plain dict."""
    if frozen is None:
        return {}
    return json.loads(frozen)


def validate_dynamics(
    family: str, params: Optional[str], seed: Optional[int], n: int
) -> None:
    """Construction-time gate for a schedule-dynamics parameterization.

    Raises :class:`ScenarioError` — always naming the family — when the
    parameters don't match the family's schema, when a randomized family
    is missing its seed (or a deterministic one carries a pointless
    seed that would perturb the content hash), or when the schedule
    class itself rejects the values on an ``n``-ring footprint. A spec
    that survives this is guaranteed instantiable by
    :func:`build_schedule` in every chunk worker.
    """
    schema = SCHEDULE_PARAMS.get(family)
    if schema is None:
        raise ScenarioError(
            f"unknown schedule-dynamics family {family!r}; "
            f"choose from {sorted(SCHEDULE_PARAMS)}"
        )
    data = params_dict(params)
    unknown = sorted(set(data) - set(schema.accepted))
    if unknown:
        raise ScenarioError(
            f"dynamics family {family!r} does not accept parameter(s) "
            f"{unknown}; accepted: {sorted(schema.accepted) or 'none'}"
        )
    missing = sorted(set(schema.required) - set(data))
    if missing:
        raise ScenarioError(
            f"dynamics family {family!r} requires parameter(s) {missing}"
        )
    if schema.randomized and seed is None:
        raise ScenarioError(
            f"dynamics family {family!r} is randomized and needs an "
            "explicit dynamics_seed (draws are pure functions of "
            "(seed, t), so the seed is part of the workload identity)"
        )
    if not schema.randomized and seed is not None:
        raise ScenarioError(
            f"dynamics family {family!r} is deterministic; drop "
            f"dynamics_seed={seed} (an unused seed would perturb the "
            "scenario content hash)"
        )
    try:
        build_schedule(family, params, seed, RingTopology(n))
    except ScenarioError:
        raise
    except (ReproError, TypeError, ValueError) as exc:
        raise ScenarioError(
            f"dynamics family {family!r} rejects its parameters on the "
            f"{n}-ring: {exc}"
        ) from exc


def build_schedule(
    family: str,
    params: Optional[str],
    seed: Optional[int],
    topology: RingTopology,
) -> EvolvingGraph:
    """Instantiate a schedule family on a concrete footprint.

    ``params`` is the canonical JSON string (or ``None``); JSON's string
    keys are mapped back onto the constructors' integer edge identifiers
    where the family expects them (``patterns``, per-edge ``p``,
    ``present``).
    """
    schema = SCHEDULE_PARAMS.get(family)
    if schema is None:
        raise ScenarioError(
            f"unknown schedule-dynamics family {family!r}; "
            f"choose from {sorted(SCHEDULE_PARAMS)}"
        )
    kwargs: dict[str, Any] = dict(params_dict(params))
    if "patterns" in kwargs:
        kwargs["patterns"] = {
            int(edge): tuple(bool(b) for b in pattern)
            for edge, pattern in kwargs["patterns"].items()
        }
    if "present" in kwargs:
        kwargs["present"] = frozenset(int(edge) for edge in kwargs["present"])
    if isinstance(kwargs.get("p"), Mapping):
        kwargs["p"] = {
            int(edge): float(prob) for edge, prob in kwargs["p"].items()
        }
    if schema.randomized:
        kwargs["seed"] = seed
    cls = SCHEDULE_FAMILIES[family]
    return cls(topology, **kwargs)


def schedule_masks(schedule: EvolvingGraph, horizon: int) -> tuple[int, ...]:
    """Precompile ``horizon`` rounds of a schedule into edge bitmasks.

    ``result[t]`` has bit ``e`` set iff edge ``e`` is present at time
    ``t`` — the exact move encoding of the packed layer
    (:meth:`CompiledTables.edges_to_mask`), computed once per chunk so
    the simulation hot loop never touches a frozenset. Seeded schedules
    make this a pure function of the spec, like everything else on the
    simulation path.
    """
    if horizon < 0:
        raise ScenarioError(f"horizon must be >= 0, got {horizon}")
    return tuple(
        sum(1 << edge for edge in schedule.present_edges(t))
        for t in range(horizon)
    )


__all__ = [
    "DEFAULT_HORIZON",
    "FamilySchema",
    "RANDOMIZED_FAMILIES",
    "SCHEDULE_PARAMS",
    "build_schedule",
    "canonical_params",
    "params_dict",
    "schedule_masks",
    "validate_dynamics",
]
