"""Greedy window-confinement adversary (generalized, best-effort).

Confines all robots to a fixed arc ("window") of the ring by choosing,
every round, a present-edge set under which no robot's Move phase leaves
the window. Candidate sets vary only the window-relevant edges (the arc's
inner edges plus its two boundary edges); all other ring edges are always
present. Among the confining candidates, the adversary maximizes
*recurrence pressure* — presenting the stalest edges first — and, as a
tie-break, robot movement.

Safety: the candidate that removes every window-relevant edge always
confines (no robot adjacent to a present relevant edge can go anywhere
except along inner edges; with all inner edges absent too, nobody moves),
so a confining choice exists at every round and the trap never "fails
open".

Honesty note: unlike :class:`~repro.adversary.oscillation.OscillationTrap`
(single robot, window 2) this generalized trap does **not** guarantee the
realized graph is connected-over-time against every algorithm. A program
that parks one robot at each end of the window, each pointing outward
forever, forces *both* boundary edges to stay absent — two
eventually-missing edges. The paper's Lemma 4.1 rules this out for
*correct* two-robot algorithms (a robot in a ``OneEdge`` situation must
eventually leave), which is exactly why the theorem's adversary wins; for
arbitrary (incorrect) algorithms, rigorous per-algorithm traps come from
:mod:`repro.verification` instead. Use the :attr:`ledger` to audit any
particular run.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.adversary.base import RecurrenceLedger
from repro.errors import ConfigurationError, TopologyError
from repro.graph.topology import RingTopology
from repro.sim.config import Observation
from repro.sim.engine import step_fsync
from repro.types import EdgeId, GlobalDirection, NodeId


class WindowConfinementAdversary:
    """Confine k robots to ``length`` consecutive ring nodes, greedily.

    Parameters
    ----------
    topology:
        Ring footprint (``n >= 3``).
    anchor:
        First node of the window (the arc runs CW from it).
    length:
        Number of nodes in the window (``2 <= length <= n - 1``; at least
        one node must remain outside for a trap to mean anything).
    movement_bonus:
        Relative weight of robot movement in the greedy score (kept small:
        recurrence pressure dominates).
    """

    def __init__(
        self,
        topology: RingTopology,
        anchor: NodeId,
        length: int,
        movement_bonus: int = 1,
    ) -> None:
        if not topology.is_ring:
            raise TopologyError("window confinement is defined on rings")
        if topology.n < 3:
            raise TopologyError(f"need a ring of size >= 3, got {topology.n}")
        if not 2 <= length <= topology.n - 1:
            raise TopologyError(
                f"window length must be in 2..{topology.n - 1}, got {length}"
            )
        topology.check_node(anchor)
        self._topology = topology
        self._window: tuple[NodeId, ...] = tuple(
            topology.arc_nodes(anchor, GlobalDirection.CW, length - 1)
        )
        self._window_set = frozenset(self._window)
        inner = [
            topology.port(node, GlobalDirection.CW) for node in self._window[:-1]
        ]
        boundary_ccw = topology.port(self._window[0], GlobalDirection.CCW)
        boundary_cw = topology.port(self._window[-1], GlobalDirection.CW)
        relevant = list(dict.fromkeys([boundary_ccw, *inner, boundary_cw]))
        self._relevant: tuple[EdgeId, ...] = tuple(e for e in relevant if e is not None)
        self._movement_bonus = movement_bonus
        self.ledger = RecurrenceLedger(topology)

    @property
    def window(self) -> tuple[NodeId, ...]:
        """The confinement arc (CW-ordered nodes)."""
        return self._window

    @property
    def relevant_edges(self) -> tuple[EdgeId, ...]:
        """The edges the adversary plays with (others are always present)."""
        return self._relevant

    def _candidates(self) -> Sequence[frozenset[EdgeId]]:
        base = self._topology.all_edges - set(self._relevant)
        masks = range(1 << len(self._relevant))
        out = []
        for mask in masks:
            chosen = {
                self._relevant[i]
                for i in range(len(self._relevant))
                if mask >> i & 1
            }
            out.append(frozenset(base | chosen))
        return out

    def edges_at(self, t: int, observation: Observation) -> frozenset[EdgeId]:
        configuration = observation.configuration
        for position in configuration.positions:
            if position not in self._window_set:
                raise ConfigurationError(
                    f"robot escaped the window {self._window}: position {position}"
                )
        best: Optional[frozenset[EdgeId]] = None
        best_score = -1
        for present in self._candidates():
            after, _views, moved = step_fsync(
                self._topology, observation.algorithm, configuration, present
            )
            if any(pos not in self._window_set for pos in after.positions):
                continue
            score = 0
            for edge in self._relevant:
                if edge in present:
                    streak = self.ledger.staleness(edge)
                    score += 4 * (streak + 1) * (streak + 1)
            score += self._movement_bonus * sum(moved)
            if score > best_score:
                best_score = score
                best = present
        assert best is not None  # the all-relevant-absent candidate always confines
        self.ledger.record(best)
        return best


__all__ = ["WindowConfinementAdversary"]
