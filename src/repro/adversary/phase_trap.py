"""The two-robot four-phase trap (Theorem 4.1, Figure 2).

Theorem 4.1: no deterministic algorithm perpetually explores
connected-over-time rings of size >= 4 with two robots. The proof confines
the robots to three consecutive nodes ``u, v, w`` (``v`` CW of ``u``,
``w`` CW of ``v``) by cycling through four phases, each removing a finite
set of edges until the one mobile robot performs its forced move (the
proof's Items 1–8; edge names ``eul = (u-1,u)``, ``euv = (u,v)``,
``evw = (v,w)``, ``ewr = (w,w+1)``):

========  ===============  =========================  ==================
phase     positions        absent edges               advance when
========  ===============  =========================  ==================
0 (It.1)  ``{u, v}``       ``{eul, euv}``             ``{u, w}`` reached
1 (It.3)  ``{u, w}``       ``{eul, evw, ewr}``        ``{v, w}`` reached
2 (It.5)  ``{v, w}``       ``{evw, ewr}``             ``{u, w}`` reached
3 (It.7)  ``{u, w}``       ``{eul, euv, ewr}``        ``{u, v}`` reached
========  ===============  =========================  ==================

In each phase exactly one robot sits on a ``OneEdge`` node (one adjacent
edge continuously absent, the other continuously present); Lemma 4.1 shows
a *correct* algorithm must make that robot leave in finite time, which
advances the machine. Every removal interval is then finite, so every edge
is recurrent in the realized ``G_ω`` — connected-over-time — while only
``u, v, w`` are ever visited: exploration of any ring with a fourth node
fails.

Concrete (necessarily incorrect) algorithms may instead *stall*: the
"mobile" robot points at an absent edge and waits forever, which would
leave two edges absent forever and break the promise. When a stall
persists past ``patience`` rounds — or the configuration leaves the
expected script, e.g. a tower forms — this implementation switches
permanently to the greedy
:class:`~repro.adversary.window.WindowConfinementAdversary` on the same
window and records the fact (:attr:`fallback_round`), keeping the run
honest and auditable rather than silently violating the promise.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.base import RecurrenceLedger
from repro.adversary.window import WindowConfinementAdversary
from repro.errors import ConfigurationError, TopologyError
from repro.graph.topology import RingTopology
from repro.sim.config import Observation
from repro.types import EdgeId, GlobalDirection, NodeId


class TheoremPhaseTrap:
    """The literal Theorem 4.1 phase machine for two robots.

    Parameters
    ----------
    topology:
        Ring footprint, size >= 4 (on the 3-ring no two-robot trap exists —
        Theorem 4.2).
    anchor:
        The node playing ``u``; the window is ``u, v = u+1, w = u+2`` (CW).
        Initial robot positions must be ``{u, v}`` (the proof's γ_0).
    patience:
        Rounds a phase may wait for its forced move before the trap falls
        back to greedy confinement.
    """

    def __init__(
        self, topology: RingTopology, anchor: NodeId, patience: int = 64
    ) -> None:
        if not topology.is_ring:
            raise TopologyError("the phase trap is defined on rings")
        if topology.n < 4:
            raise TopologyError(
                "no two-robot trap exists on rings of size < 4 (Theorem 4.2); "
                f"got n={topology.n}"
            )
        if patience < 1:
            raise TopologyError(f"patience must be positive, got {patience}")
        topology.check_node(anchor)
        self._topology = topology
        u, v, w = topology.arc_nodes(anchor, GlobalDirection.CW, 2)
        self._u, self._v, self._w = u, v, w
        eul = topology.port(u, GlobalDirection.CCW)
        euv = topology.port(u, GlobalDirection.CW)
        evw = topology.port(v, GlobalDirection.CW)
        ewr = topology.port(w, GlobalDirection.CW)
        assert None not in (eul, euv, evw, ewr)
        # (expected positions, absent edges, positions that advance the phase)
        self._script: tuple[tuple[frozenset[NodeId], frozenset[EdgeId], frozenset[NodeId]], ...] = (
            (frozenset({u, v}), frozenset({eul, euv}), frozenset({u, w})),
            (frozenset({u, w}), frozenset({eul, evw, ewr}), frozenset({v, w})),
            (frozenset({v, w}), frozenset({evw, ewr}), frozenset({u, w})),
            (frozenset({u, w}), frozenset({eul, euv, ewr}), frozenset({u, v})),
        )
        self._phase = 0
        self._rounds_in_phase = 0
        self._patience = patience
        self._fallback: Optional[WindowConfinementAdversary] = None
        self.fallback_round: Optional[int] = None
        self.phase_advances = 0
        self.ledger = RecurrenceLedger(topology)

    @property
    def window(self) -> tuple[NodeId, NodeId, NodeId]:
        """The confinement arc ``(u, v, w)``."""
        return (self._u, self._v, self._w)

    @property
    def phase(self) -> int:
        """Current phase index (0..3)."""
        return self._phase

    @property
    def used_fallback(self) -> bool:
        """Whether the literal script had to hand over to greedy confinement."""
        return self.fallback_round is not None

    def _enter_fallback(self, t: int) -> None:
        self._fallback = WindowConfinementAdversary(
            self._topology, anchor=self._u, length=3
        )
        # Inherit the staleness picture so the greedy sees true history.
        self._fallback.ledger = self.ledger
        self.fallback_round = t

    def edges_at(self, t: int, observation: Observation) -> frozenset[EdgeId]:
        configuration = observation.configuration
        if configuration.robot_count != 2:
            raise ConfigurationError(
                f"the phase trap targets exactly two robots, got "
                f"{configuration.robot_count}"
            )
        if self._fallback is not None:
            return self._fallback.edges_at(t, observation)

        positions = frozenset(configuration.positions)
        expected, absent, advance_on = self._script[self._phase]
        if positions == advance_on and self._rounds_in_phase > 0:
            self._phase = (self._phase + 1) % 4
            self._rounds_in_phase = 0
            self.phase_advances += 1
            expected, absent, advance_on = self._script[self._phase]
            positions_ok = positions == expected
        else:
            positions_ok = positions == expected
        if not positions_ok or self._rounds_in_phase >= self._patience:
            self._enter_fallback(t)
            assert self._fallback is not None
            return self._fallback.edges_at(t, observation)

        self._rounds_in_phase += 1
        present = self._topology.all_edges - absent
        self.ledger.record(present)
        return present


__all__ = ["TheoremPhaseTrap"]
