"""The SSYNC freeze argument of Di Luna et al. [10] (experiment X2).

The paper restricts itself to FSYNC because of this related-work result:
under SSYNC, exploration of dynamic graphs is impossible *regardless of
every other assumption*. "The proof of this result relies on the
possibility offered to the adversary to wake up each robot independently
and to remove the edge that the robot wants to traverse at this time"
(paper, Section 1).

:class:`SsyncBlocker` is that adversary, playing both roles at once:

* as an **activation scheduler** it wakes exactly one robot per round,
  round-robin (fair: every robot is activated infinitely often);
* as an **edge scheduler** it presents every edge *except* what is needed
  to keep the activated robot still — it searches the (at most four)
  presence combinations of the robot's two adjacent edges for the
  fullest one under which the robot's Look–Compute–Move cycle ends where
  it started.

No robot ever moves, so only the k < n initial nodes are ever visited and
perpetual exploration fails. Every edge not adjacent to the activated
robot is present every round, and each adjacent edge is re-presented
whenever another robot's turn comes, so every edge is present infinitely
often: the realized evolving graph is connected-over-time (in fact its
*snapshot* graphs are almost always complete rings). This defeats even
``PEF_3+`` with k >= 3 — synchrony, not robot count, is the broken leg.

Requires k >= 2: with a single robot SSYNC degenerates to FSYNC and the
trap of Theorem 5.1 (:class:`~repro.adversary.oscillation.OscillationTrap`)
applies instead.
"""

from __future__ import annotations

from repro.adversary.base import RecurrenceLedger
from repro.errors import ConfigurationError, TopologyError
from repro.graph.topology import Topology
from repro.sim.config import Observation
from repro.sim.semi_sync import step_ssync
from repro.types import EdgeId, GlobalDirection, RobotId


class SsyncBlocker:
    """Colluding activation + edge adversary freezing every robot (SSYNC)."""

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self.ledger = RecurrenceLedger(topology)
        self.blocked_rounds = 0

    def active_robots(self, t: int, observation: Observation) -> frozenset[RobotId]:
        """Wake exactly one robot per round, cycling fairly."""
        k = observation.configuration.robot_count
        if k < 2:
            raise ConfigurationError(
                "the SSYNC blocker needs k >= 2 (with one robot SSYNC is FSYNC)"
            )
        return frozenset({t % k})

    def edges_at(self, t: int, observation: Observation) -> frozenset[EdgeId]:
        """Fullest edge set under which the activated robot stays put."""
        configuration = observation.configuration
        k = configuration.robot_count
        robot = t % k
        position = configuration.positions[robot]
        adjacent = [
            edge
            for edge in self._topology.incident_edges(position)
            if edge is not None
        ]
        # Try presence masks from fullest to emptiest; the empty mask always
        # freezes the robot (nothing to cross), so a choice always exists.
        candidates = sorted(
            range(1 << len(adjacent)),
            key=lambda mask: -bin(mask).count("1"),
        )
        for mask in candidates:
            removed = {
                adjacent[i] for i in range(len(adjacent)) if not mask >> i & 1
            }
            present = self._topology.all_edges - removed
            after, _views, moved = step_ssync(
                self._topology,
                observation.algorithm,
                configuration,
                present,
                frozenset({robot}),
            )
            if not moved[robot] and after.positions[robot] == position:
                if removed:
                    self.blocked_rounds += 1
                self.ledger.record(present)
                return present
        raise TopologyError("unreachable: the all-absent mask freezes any robot")


__all__ = ["SsyncBlocker"]
