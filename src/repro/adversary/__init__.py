"""Adaptive adversaries: executable impossibility constructions.

The paper's negative results (Theorems 4.1 and 5.1) build evolving graphs
on-line against a given deterministic algorithm. This subpackage turns
those constructions into runnable edge schedulers:

* :class:`OscillationTrap` — the Theorem 5.1 / Figure 3 single-robot trap:
  confine one robot to two adjacent nodes forever while keeping the graph
  connected-over-time;
* :class:`TheoremPhaseTrap` — the Theorem 4.1 / Figure 2 four-phase
  two-robot trap: confine two robots to three consecutive nodes;
* :class:`WindowConfinementAdversary` — a generalized greedy confinement
  adversary (any k, any window) with recurrence-pressure scoring, used as
  the robust fallback and as a fuzzing opponent;
* :class:`SsyncBlocker` — the Di Luna et al. [10] SSYNC argument: activate
  one robot at a time and remove the edge it is about to traverse.

Each adversary maintains a :class:`RecurrenceLedger` so experiments can
audit that the realized evolving graph honors the connected-over-time
promise (at most one suspected eventually-missing edge).
"""

from repro.adversary.base import RecurrenceLedger
from repro.adversary.oscillation import OscillationTrap
from repro.adversary.phase_trap import TheoremPhaseTrap
from repro.adversary.window import WindowConfinementAdversary
from repro.adversary.ssync_blocker import SsyncBlocker

__all__ = [
    "RecurrenceLedger",
    "OscillationTrap",
    "TheoremPhaseTrap",
    "WindowConfinementAdversary",
    "SsyncBlocker",
]
