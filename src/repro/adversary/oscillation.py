"""The single-robot oscillation trap (Theorem 5.1, Figure 3).

Theorem 5.1: no deterministic algorithm perpetually explores
connected-over-time rings of size >= 3 with one robot. The proof pins the
robot between two adjacent nodes ``u`` and ``v``: whenever the robot sits
on ``u`` the adversary removes ``u``'s *outward* edge (the one not leading
to ``v``) and presents everything else, and symmetrically on ``v``. The
robot either waits (pointing at the absent edge) or crosses to the other
window node; it can never leave ``{u, v}``.

Connected-over-time audit: the outward edge of ``u`` is absent only while
the robot stands on ``u``. If the robot oscillates forever, both boundary
edges are present infinitely often and *no* edge is eventually missing. If
the robot eventually parks on one node forever, exactly one boundary edge
is eventually missing — still within the ring's budget of one. Either way
the realized evolving graph is connected-over-time and the robot visits at
most two of the ring's >= 3 nodes: perpetual exploration fails. This is
exactly the paper's ``G_ω`` (Section 5.1), realized adaptively so that the
same object defeats *any* algorithm rather than one fixed ``ε``.
"""

from __future__ import annotations

from typing import Optional

from repro.adversary.base import RecurrenceLedger
from repro.errors import ConfigurationError, TopologyError
from repro.graph.topology import RingTopology
from repro.sim.config import Observation
from repro.types import EdgeId, GlobalDirection, NodeId


class OscillationTrap:
    """Adaptive single-robot confinement to two adjacent ring nodes.

    Parameters
    ----------
    topology:
        The ring footprint (size >= 3; on smaller rings no trap exists —
        that is Theorem 5.2).
    window_anchor:
        The window is ``{anchor, anchor+1}`` (CW). Defaults to pinning the
        robot's initial node as the anchor on first use.
    """

    def __init__(
        self, topology: RingTopology, window_anchor: Optional[NodeId] = None
    ) -> None:
        if not topology.is_ring:
            raise TopologyError("the oscillation trap is defined on rings")
        if topology.n < 3:
            raise TopologyError(
                "no single-robot trap exists on rings of size < 3 (Theorem 5.2); "
                f"got n={topology.n}"
            )
        self._topology = topology
        self._anchor = window_anchor
        if window_anchor is not None:
            topology.check_node(window_anchor)
        self.ledger = RecurrenceLedger(topology)

    @property
    def window(self) -> Optional[tuple[NodeId, NodeId]]:
        """The two window nodes once anchored (``None`` before first round)."""
        if self._anchor is None:
            return None
        return (self._anchor, self._topology.neighbor(self._anchor, GlobalDirection.CW))

    def edges_at(self, t: int, observation: Observation) -> frozenset[EdgeId]:
        configuration = observation.configuration
        if configuration.robot_count != 1:
            raise ConfigurationError(
                f"the oscillation trap targets exactly one robot, got "
                f"{configuration.robot_count}"
            )
        position = configuration.positions[0]
        if self._anchor is None:
            # Anchor the window so that the robot starts on it.
            self._anchor = position
        window = self.window
        assert window is not None
        u, v = window
        if position == u:
            outward = self._topology.port(u, GlobalDirection.CCW)
        elif position == v:
            outward = self._topology.port(v, GlobalDirection.CW)
        else:
            raise ConfigurationError(
                f"robot escaped the trap window {window}: position {position}"
            )
        present = self._topology.all_edges - {outward}
        self.ledger.record(present)
        return present


__all__ = ["OscillationTrap"]
