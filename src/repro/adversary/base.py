"""Shared adversary infrastructure: recurrence accounting.

An adaptive adversary must keep a promise while it schemes: the evolving
graph it realizes has to remain connected-over-time (at most one
eventually-missing edge on a ring). :class:`RecurrenceLedger` tracks, for
every edge, how long it has been absent, so adversaries can prefer to
re-present stale edges and experiments can audit the realized schedule.
"""

from __future__ import annotations

from repro.graph.topology import Topology
from repro.types import EdgeId


class RecurrenceLedger:
    """Per-edge absence bookkeeping for adaptive adversaries.

    ``staleness(e)`` is the number of consecutive rounds edge ``e`` has
    been absent, counted up to the most recent :meth:`record` call. An
    adversary that keeps every edge's staleness bounded (except possibly
    one designated victim's) realizes a connected-over-time graph on any
    infinite extension of its play.
    """

    def __init__(self, topology: Topology) -> None:
        self._topology = topology
        self._staleness: dict[EdgeId, int] = {edge: 0 for edge in topology.edges}
        self._worst: dict[EdgeId, int] = {edge: 0 for edge in topology.edges}
        self._rounds = 0

    @property
    def rounds(self) -> int:
        """Number of recorded rounds."""
        return self._rounds

    def staleness(self, edge: EdgeId) -> int:
        """Consecutive rounds ``edge`` has currently been absent."""
        return self._staleness[edge]

    def worst_staleness(self, edge: EdgeId) -> int:
        """The longest absence streak ``edge`` ever accumulated."""
        return max(self._worst[edge], self._staleness[edge])

    def record(self, present: frozenset[EdgeId]) -> None:
        """Account one realized round."""
        self._rounds += 1
        for edge in self._topology.edges:
            if edge in present:
                if self._staleness[edge] > self._worst[edge]:
                    self._worst[edge] = self._staleness[edge]
                self._staleness[edge] = 0
            else:
                self._staleness[edge] += 1

    def stale_edges(self, threshold: int) -> frozenset[EdgeId]:
        """Edges currently absent for at least ``threshold`` rounds."""
        return frozenset(
            edge for edge, streak in self._staleness.items() if streak >= threshold
        )

    def audit_connected_over_time(self, threshold: int) -> bool:
        """Whether at most one edge looks eventually-missing.

        An edge "looks eventually missing" when its current absence streak
        reaches ``threshold``. On a ring, connected-over-time tolerates at
        most one such edge (none on a chain footprint — callers pick the
        bound appropriate to their footprint).
        """
        budget = 1 if self._topology.is_ring else 0
        return len(self.stale_edges(threshold)) <= budget


__all__ = ["RecurrenceLedger"]
