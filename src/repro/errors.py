"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Each subclass corresponds to a well-defined misuse or
model violation; none of them is raised during a correct simulation of a
well-initiated execution (in the sense of Section 2.4 of the paper).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """A topology was constructed or queried in an inconsistent way.

    Examples: a ring with fewer than two nodes, an edge identifier outside
    the footprint, or asking a chain for the clockwise port of its last node
    in a context where a real edge is required.
    """


class ScheduleError(ReproError):
    """An evolving-graph schedule violates its own declared contract.

    Examples: a present-edge set containing identifiers outside the
    footprint, or an explicit schedule queried beyond its horizon without a
    declared suffix behaviour.
    """


class ConfigurationError(ReproError):
    """An execution was started from an invalid configuration.

    The paper (Section 2.4) requires *well-initiated* executions: strictly
    fewer robots than nodes and a towerless initial placement. Violations of
    either requirement — as well as malformed chirality vectors or positions
    outside the node range — raise this error.
    """


class AlgorithmError(ReproError):
    """A robot algorithm broke the model contract.

    Examples: returning a state object of an unexpected type, a state whose
    ``dir`` attribute is not a :class:`repro.types.Direction`, or an
    unhashable state handed to the exhaustive verifier.
    """


class VerificationError(ReproError):
    """The exhaustive verifier was asked an ill-posed question.

    Examples: verifying an algorithm whose state space is not finite or not
    hashable, or requesting trap synthesis for an instance that was proven
    explorable (no trap exists).
    """


class ScenarioError(ReproError):
    """A scenario spec, result store or campaign is inconsistent.

    Examples: an unknown dynamics/scheduler/property name in a scenario
    spec, a result store whose checkpoint records disagree with the
    scenario they claim to belong to, or a campaign report requested
    before every chunk has been verified.
    """


class CampaignIncompleteError(ScenarioError):
    """A campaign report was requested before every chunk verified.

    The one *expected* mid-campaign failure: callers distinguishing
    "keep running" from genuine store corruption catch this subclass and
    the :class:`ScenarioError` base separately (the CLI maps them to
    exit codes 1 and 2).
    """


class CertificateError(ReproError):
    """A trap certificate failed independent replay validation.

    Raised when a lasso schedule synthesized by the game solver does not
    starve its target node, or does not keep its recurrent edges recurrent,
    when replayed through the simulator. This error indicates a bug in
    either the solver or the engine and is never expected in a release.
    """
