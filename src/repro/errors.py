"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch one base class. Each subclass corresponds to a well-defined misuse or
model violation; none of them is raised during a correct simulation of a
well-initiated execution (in the sense of Section 2.4 of the paper).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """A topology was constructed or queried in an inconsistent way.

    Examples: a ring with fewer than two nodes, an edge identifier outside
    the footprint, or asking a chain for the clockwise port of its last node
    in a context where a real edge is required.
    """


class ScheduleError(ReproError):
    """An evolving-graph schedule violates its own declared contract.

    Examples: a present-edge set containing identifiers outside the
    footprint, or an explicit schedule queried beyond its horizon without a
    declared suffix behaviour.
    """


class ConfigurationError(ReproError):
    """An execution was started from an invalid configuration.

    The paper (Section 2.4) requires *well-initiated* executions: strictly
    fewer robots than nodes and a towerless initial placement. Violations of
    either requirement — as well as malformed chirality vectors or positions
    outside the node range — raise this error.
    """


class AlgorithmError(ReproError):
    """A robot algorithm broke the model contract.

    Examples: returning a state object of an unexpected type, a state whose
    ``dir`` attribute is not a :class:`repro.types.Direction`, or an
    unhashable state handed to the exhaustive verifier.
    """


class VerificationError(ReproError):
    """The exhaustive verifier was asked an ill-posed question.

    Examples: verifying an algorithm whose state space is not finite or not
    hashable, or requesting trap synthesis for an instance that was proven
    explorable (no trap exists).
    """


class ScenarioError(ReproError):
    """A scenario spec, result store or campaign is inconsistent.

    Examples: an unknown dynamics/scheduler/property name in a scenario
    spec, a result store whose checkpoint records disagree with the
    scenario they claim to belong to, or a campaign report requested
    before every chunk has been verified.
    """


class CampaignIncompleteError(ScenarioError):
    """A campaign report was requested before every chunk verified.

    The one *expected* mid-campaign failure: callers distinguishing
    "keep running" from genuine store corruption catch this subclass and
    the :class:`ScenarioError` base separately (the CLI maps them to
    exit codes :data:`EXIT_INCOMPLETE` and :data:`EXIT_USAGE`).
    """


class StoreCorruptionError(ScenarioError):
    """A result store holds records the strict reader refuses.

    Examples: an undecodable non-final checkpoint line, a record whose
    content check does not match its body, conflicting completed records
    for one chunk, a chunk digest that disagrees with the spec's own
    chunking, or two different scenarios colliding on one directory.
    The strict read path *always* raises on these — silent corruption
    must never masquerade as success; ``campaign fsck``
    (:meth:`repro.scenarios.store.ResultStore.recover`) is the explicit,
    opt-in salvage path.
    """


class ChunkTimeoutError(ScenarioError):
    """A campaign chunk exceeded its per-chunk deadline.

    Raised by the supervised executor when a worker fails to deliver a
    chunk tally within ``RetryPolicy.chunk_timeout`` seconds; the worker
    is killed and the chunk is retried with backoff (then quarantined).
    """


class WorkerCrashError(ScenarioError):
    """A campaign worker died without delivering its chunk tally.

    Covers both real worker deaths (the supervisor observed an exit
    without a result) and injected crashes from a
    :class:`~repro.scenarios.faults.FaultPlan` on the in-process path.
    """


class ChunkPoisonedError(ScenarioError):
    """A chunk failed every allowed attempt.

    With quarantine enabled (the default) the failure is *recorded* in
    the store instead and the campaign completes degraded; this error is
    raised only under ``RetryPolicy(quarantine=False)`` — fail-fast
    callers who prefer a crash over a degraded report.
    """


class CampaignDegradedError(ScenarioError):
    """A clean report was requested from a degraded campaign.

    A degraded campaign settled every chunk but quarantined at least
    one; callers must either pass ``allow_degraded=True`` (the report
    then names the failed chunks) or re-execute them via
    ``campaign retry-failed``.
    """


class CampaignInterruptedError(ScenarioError):
    """A campaign run was stopped by SIGINT/SIGTERM.

    The runner's signal handlers finish fsyncing the in-flight chunk
    record before raising this, so an interrupt never leaves a torn
    non-final line; the CLI maps it to :data:`EXIT_INTERRUPTED`.
    """


# ----------------------------------------------------------------------
# CLI exit codes — the error taxonomy, visible to shell scripts.
# ----------------------------------------------------------------------
EXIT_OK = 0
"""Success (for ``campaign run``: every chunk verified, none failed)."""

EXIT_INCOMPLETE = 1
"""Expected mid-campaign state: not every chunk has checkpointed yet."""

EXIT_USAGE = 2
"""Bad invocation or an inconsistent scenario/spec (generic error)."""

EXIT_CORRUPT = 3
"""Store corruption: operator intervention (``campaign fsck``) needed."""

EXIT_DEGRADED = 4
"""The campaign settled but quarantined chunks (partial results)."""

EXIT_INTERRUPTED = 130
"""The run was stopped cleanly by SIGINT/SIGTERM (128 + SIGINT)."""


def exit_code_for(exc: BaseException) -> int:
    """Map a library exception onto the CLI exit-code taxonomy."""
    if isinstance(exc, CampaignInterruptedError):
        return EXIT_INTERRUPTED
    if isinstance(exc, StoreCorruptionError):
        return EXIT_CORRUPT
    if isinstance(exc, (CampaignDegradedError, ChunkPoisonedError)):
        return EXIT_DEGRADED
    if isinstance(exc, CampaignIncompleteError):
        return EXIT_INCOMPLETE
    return EXIT_USAGE


class CertificateError(ReproError):
    """A trap certificate failed independent replay validation.

    Raised when a lasso schedule synthesized by the game solver does not
    starve its target node, or does not keep its recurrent edges recurrent,
    when replayed through the simulator. This error indicates a bug in
    either the solver or the engine and is never expected in a release.
    """
